//! The Figure 12 architecture with real concurrency — and deterministic
//! replay.
//!
//! §5.3: *"multiple CrawlModules may run in parallel"* and *"separating the
//! update decision (UpdateModule) from the refinement decision
//! (RankingModule) is crucial for performance … the crawler cannot
//! recompute the importance of pages for every page crawled."*
//!
//! This engine realizes both: N crawl workers fetch concurrently behind
//! crossbeam channels while the coordinator (UpdateModule role) applies
//! results and schedules revisits, and the RankingModule runs on its *own*
//! thread against collection snapshots — the crawl hot path never waits
//! for PageRank.
//!
//! Unlike a free-running event loop, the coordinator is **deterministic**:
//!
//! * Fetch slots are dispatched in batches of at most `workers`, each job
//!   tagged with its slot sequence number; completions are collected for
//!   the whole batch and applied in slot order, so the interleaving of
//!   state updates does not depend on thread timing. Workers still fetch
//!   concurrently — only the *application* order is pinned.
//! * A ranking request is issued at each pass boundary and its response is
//!   applied at the *next* boundary (one full interval of overlap), rather
//!   than whenever the ranking thread happens to finish. PageRank latency
//!   is hidden exactly as before; its effect on the crawl schedule is now
//!   replayable.
//!
//! Determinism is what makes the threaded engine *checkpointable*: a
//! [`CrawlerState`] snapshot plus the write-ahead-log tail reconstructs the
//! pre-crash engine bit-for-bit (`tests/determinism.rs` pins this), which a
//! racy coordinator could never promise.
//!
//! Simulated time advances with the fetch budget exactly as in the
//! single-threaded engine (one slot per fetch), so results are comparable.

use crate::allurls::AllUrls;
use crate::collection::Collection;
use crate::engine::CrawlEngine;
use crate::hooks::{CrawlHook, FetchRecord, NoopHook};
use crate::incremental::IncrementalConfig;
use crate::metrics::CrawlMetrics;
use crate::modules::{CrawlModule, RankingModule, UpdateModule};
use crate::routing::{RoutedBatch, RoutedLink, RoutingState, ShardScope, WalEvent};
use crate::view::{BoundaryPages, ViewBoundary, ViewPublisher};
use crate::state::{
    entries_to_queue, queue_to_entries, CrawlerState, EngineClock, EngineConfig, EngineKind,
};
use crossbeam::channel;
use webevo_obs::{LogicalClock, ObsSink, SpanGuard, Stage};
use webevo_schedule::RevisitQueue;
use webevo_sim::{FetchError, FetchOutcome, Fetcher, Politeness, SimFetcher, WebUniverse};
use webevo_types::{DenseSet, PageId, Url, WebEvoError};

/// A fetch completion flowing back from a crawl worker. `seq` is the slot
/// sequence number assigned at dispatch; the coordinator applies a batch
/// in `seq` order regardless of which worker finished first.
struct CrawlDone {
    seq: u64,
    url: Url,
    t: f64,
    result: Result<FetchOutcome, FetchError>,
}

/// A ranking request: snapshots of the state the RankingModule scans.
struct RankRequest {
    collection: Collection,
    all_urls: AllUrls,
}

/// A ranking response: new importance scores and replacement proposals.
struct RankResponse {
    importance: Vec<(PageId, f64)>,
    replacements: Vec<(PageId, Url)>,
}

/// Compute a ranking response from a request — the ranking thread's inner
/// step, also run synchronously during WAL replay.
fn rank(ranking: &mut RankingModule, mut req: RankRequest) -> RankResponse {
    let outcome = ranking.run(&mut req.collection, &req.all_urls);
    let importance = req
        .collection
        .iter()
        .map(|(p, s)| (p, s.importance))
        .collect();
    RankResponse { importance, replacements: outcome.replacements }
}

/// The multi-threaded incremental crawler.
pub struct ThreadedCrawler {
    config: IncrementalConfig,
    workers: usize,
    collection: Collection,
    all_urls: AllUrls,
    queue: RevisitQueue,
    queued: DenseSet,
    /// Ranking-proposed admissions; eviction happens on crawl success
    /// (see the single-threaded engine for the rationale).
    admissions: DenseSet,
    update: UpdateModule,
    metrics: CrawlMetrics,
    ranking_applied: u64,
    run_start: f64,
    clock: EngineClock,
    seeded: bool,
    fetch_seq: u64,
    /// True once the first pass boundary has been crossed: a ranking
    /// request derived from the engine state at the most recent boundary
    /// is conceptually outstanding. Checkpoints persist the flag; the
    /// request itself is rebuilt from the snapshot (it is taken at exactly
    /// the state the request was built from).
    rank_pending: bool,
    /// A rebuilt-but-not-yet-issued ranking request: set by
    /// [`ThreadedCrawler::from_state`] and updated during WAL replay,
    /// consumed when the live coordinator starts.
    unsent_rank_request: Option<RankRequest>,
    /// Observability sink, touched only on the coordinator thread.
    /// Write-only and deliberately absent from [`CrawlerState`]: spans
    /// never alter the deterministic slot schedule that `replay_tail`
    /// mirrors.
    obs: ObsSink,
    /// Serving-view publisher, fired at every pass boundary on the
    /// coordinator thread. Write-only and absent from [`CrawlerState`]
    /// for the same reason as `obs`: a served run stays byte-identical to
    /// an unserved one.
    publisher: Option<Box<dyn ViewPublisher>>,
    /// Cross-shard routing: scope, outbox of foreign discoveries, and the
    /// applied-exchange counter. Scoping is enforced entirely on the
    /// coordinator (the queue never dispatches a foreign URL to a
    /// worker), so worker parallelism composes with fleet sharding.
    routing: RoutingState,
}

impl ThreadedCrawler {
    /// Create with `workers` parallel CrawlModules.
    pub fn new(config: IncrementalConfig, workers: usize) -> ThreadedCrawler {
        assert!(workers >= 1);
        let default_interval = config.capacity as f64 / config.crawl_rate_per_day;
        ThreadedCrawler {
            workers,
            collection: Collection::new(config.capacity, config.history_window),
            all_urls: AllUrls::new(),
            queue: RevisitQueue::new(),
            queued: DenseSet::new(),
            admissions: DenseSet::new(),
            update: UpdateModule::new(config.revisit, config.estimator, default_interval),
            metrics: CrawlMetrics::default(),
            ranking_applied: 0,
            run_start: 0.0,
            clock: EngineClock { t: 0.0, next_ranking: 0.0, next_sample: 0.0 },
            seeded: false,
            fetch_seq: 0,
            rank_pending: false,
            unsent_rank_request: None,
            obs: ObsSink::noop(),
            publisher: None,
            routing: RoutingState::default(),
            config,
        }
    }

    /// Rebuild an engine from a checkpointed state.
    pub fn from_state(state: CrawlerState) -> Result<ThreadedCrawler, WebEvoError> {
        let EngineKind::Threaded { workers } = state.engine else {
            return Err(WebEvoError::InvalidState(format!(
                "state was written by the {} engine, not the threaded one",
                state.engine
            )));
        };
        if workers == 0 {
            return Err(WebEvoError::InvalidState(
                "threaded state must carry a positive worker count".into(),
            ));
        }
        let config = state.config.as_incremental()?.clone();
        let mut crawler = ThreadedCrawler {
            workers,
            collection: state.collection,
            all_urls: state.all_urls,
            queue: entries_to_queue(&state.queue),
            queued: state.queued.into_iter().collect(),
            admissions: state.admissions.into_iter().collect(),
            update: state.update,
            metrics: state.metrics,
            ranking_applied: state.ranking_applied,
            run_start: state.run_start,
            clock: state.clock,
            seeded: state.seeded,
            fetch_seq: state.fetch_seq,
            rank_pending: state.rank_pending,
            unsent_rank_request: None,
            obs: ObsSink::noop(),
            publisher: None,
            routing: state.routing,
            config,
        };
        if crawler.rank_pending {
            // Snapshots are taken at pass boundaries, after the previous
            // response was applied and before the next request was issued:
            // the restored state *is* the outstanding request's base.
            crawler.unsent_rank_request = Some(RankRequest {
                collection: crawler.collection.clone(),
                all_urls: crawler.all_urls.clone(),
            });
        }
        Ok(crawler)
    }

    /// Ranking outcomes applied.
    pub fn ranking_applied(&self) -> u64 {
        self.ranking_applied
    }

    fn enqueue(&mut self, url: Url, due: f64) {
        if self.queued.insert(url.page) {
            self.queue.push(url, due);
        }
    }

    /// Start the run at the frozen clock: anchor the periodic activities
    /// and inject the seed URLs. Shared by [`CrawlEngine::drive`] on a
    /// fresh engine and by [`CrawlEngine::replay`] from a day-0 snapshot
    /// (a run killed before its first cadence snapshot).
    fn begin_run(&mut self, universe: &WebUniverse) {
        let start = self.clock.t;
        self.run_start = start;
        self.clock = EngineClock {
            t: start,
            next_ranking: start + self.config.ranking_interval_days,
            next_sample: start,
        };
        for site in universe.sites() {
            // A scoped (fleet-shard) engine seeds only the sites it owns;
            // foreign sites are other shards' seeds.
            if self.routing.is_foreign(site.id) {
                continue;
            }
            if let Some(root) = universe.occupant(site.id, 0, start) {
                let url = Url::new(site.id, root);
                self.all_urls.discover(url, start);
                self.enqueue(url, start);
            }
        }
        self.seeded = true;
    }

    /// Apply one routed-link delivery: the outbox the coordinator drained
    /// to build this exchange is cleared, each link enters `AllUrls` (and
    /// the frontier, collection permitting) exactly as a locally
    /// discovered link would, one sequence number is consumed, and the
    /// exchange counter advances. Runs on the frozen coordinator between
    /// drives, and during WAL replay at the matching slot, so a replayed
    /// shard is bit-identical to the live one.
    fn apply_routed(&mut self, batch: RoutedBatch) {
        self.routing.outbox.clear();
        self.fetch_seq = batch.seq;
        self.routing.exchanges += 1;
        let t = batch.t;
        for link in batch.links {
            let first_sighting = !self.all_urls.contains(link.url);
            self.all_urls.add_in_link(link.url, link.from, t);
            if !self.collection.is_full() && !self.collection.contains(link.url.page) {
                if first_sighting {
                    if self.queued.insert(link.url.page) {
                        self.queue.push_front(link.url);
                    }
                } else {
                    self.enqueue(link.url, t);
                }
            }
        }
    }

    /// Reconstruct everything a live drive ending at `barrier` performs
    /// after its batch loop breaks: apply the in-flight ranking response
    /// (the replay equivalent is the rebuilt-but-unsent request) and emit
    /// the pending grid samples plus the closing sample. Called from
    /// [`ThreadedCrawler::replay_tail`] when a routed record marks an
    /// exchange barrier — the only place a fleet shard's drive ends
    /// mid-log.
    fn replay_drive_end(
        &mut self,
        universe: &WebUniverse,
        ranking: &mut RankingModule,
        barrier: f64,
    ) {
        if let Some(req) = self.unsent_rank_request.take() {
            let res = rank(ranking, req);
            self.apply_ranking(res);
            self.rank_pending = false;
        }
        self.flush_samples(universe, barrier);
    }

    /// The replay inner loop. This deliberately mirrors `advance_live`'s
    /// slot scheduling (boundary order, horizon, batch dispatch,
    /// empty-slot burning) without the channels. Any change to the live
    /// coordinator's scheduling MUST be mirrored here — the
    /// `WAL replay diverged` asserts and the recovery determinism tests
    /// will catch a missed mirror loudly.
    fn replay_tail(&mut self, universe: &WebUniverse, tail: &[WalEvent]) {
        let step = 1.0 / self.config.crawl_rate_per_day;
        let mut ranking = RankingModule::new(self.config.ranking.clone());
        let mut pos = 0usize;
        while pos < tail.len() {
            // Routed batches re-inject before anything else: live
            // injection happens while the engine is frozen *between*
            // drives, i.e. before the boundary handlers of the slot the
            // clock froze on. The seq/t match is exact — slot times are
            // multiples of `step` and batches record the frozen clock.
            if let WalEvent::Routed(batch) = &tail[pos] {
                if batch.t.to_bits() == self.clock.t.to_bits()
                    && batch.seq == self.fetch_seq + 1
                {
                    // The routed record marks the end of a live drive
                    // call — the exchange barrier the coordinator drove
                    // to. Reconstruct that drive's closing work first.
                    let barrier = (self.routing.exchanges + 1) as f64
                        * self.config.ranking_interval_days;
                    self.replay_drive_end(universe, &mut ranking, barrier);
                    self.apply_routed(batch.clone());
                    pos += 1;
                    continue;
                }
            }
            let t = self.clock.t;
            while self.clock.next_sample <= t {
                let ts = self.clock.next_sample;
                self.sample_metrics(universe, ts);
                self.clock.next_sample += self.config.sample_interval_days;
            }
            if t >= self.clock.next_ranking {
                if let Some(req) = self.unsent_rank_request.take() {
                    let res = rank(&mut ranking, req);
                    self.apply_ranking(res);
                }
                self.rank_pending = true;
                self.unsent_rank_request = Some(RankRequest {
                    collection: self.collection.clone(),
                    all_urls: self.all_urls.clone(),
                });
                self.clock.next_ranking += self.config.ranking_interval_days;
            }
            let horizon = self.clock.next_sample.min(self.clock.next_ranking);
            let mut batch: Vec<CrawlDone> = Vec::new();
            let mut progressed = false;
            while batch.len() < self.workers && self.clock.t < horizon {
                let Some(WalEvent::Fetch(record)) = tail.get(pos) else { break };
                let Some(visit) = self.queue.pop() else { break };
                self.queued.remove(visit.url.page);
                if self.routing.is_foreign(visit.url.site) {
                    // Residual foreign entry (see `advance_live`): burn
                    // the slot without consuming a record.
                    self.clock.t += step;
                    progressed = true;
                    continue;
                }
                self.fetch_seq += 1;
                pos += 1;
                assert_eq!(record.seq, self.fetch_seq, "WAL replay out of sync");
                assert_eq!(
                    record.url, visit.url,
                    "WAL replay diverged at seq {}: engine scheduled {:?}, log has {:?}",
                    record.seq, visit.url, record.url
                );
                assert_eq!(
                    record.t.to_bits(),
                    self.clock.t.to_bits(),
                    "WAL replay diverged at seq {}: slot time {} vs logged {}",
                    record.seq,
                    self.clock.t,
                    record.t
                );
                batch.push(CrawlDone {
                    seq: record.seq,
                    url: record.url,
                    t: record.t,
                    result: record.result.clone(),
                });
                self.clock.t += step;
                progressed = true;
            }
            if batch.is_empty() {
                if !progressed {
                    self.clock.t += step;
                }
                continue;
            }
            for done in batch {
                self.apply_result(universe, done, &mut NoopHook);
            }
        }
    }

    /// The live coordinator: worker pool + ranking thread around the
    /// deterministic batch loop.
    fn advance_live(&mut self, universe: &WebUniverse, end: f64, hook: &mut dyn CrawlHook) {
        let step = 1.0 / self.config.crawl_rate_per_day;
        let workers = self.workers;
        let ranking_config = self.config.ranking.clone();

        let (work_tx, work_rx) = channel::unbounded::<(u64, Url, f64)>();
        let (done_tx, done_rx) = channel::unbounded::<CrawlDone>();
        let (rank_req_tx, rank_req_rx) = channel::unbounded::<RankRequest>();
        let (rank_res_tx, rank_res_rx) = channel::unbounded::<RankResponse>();

        crossbeam::scope(|scope| {
            // --- CrawlModule workers. ---
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move |_| {
                    let mut fetcher =
                        SimFetcher::new(universe).with_politeness(Politeness::unrestricted());
                    while let Ok((seq, url, t)) = work_rx.recv() {
                        let result = webevo_sim::Fetcher::fetch(&mut fetcher, url, t);
                        if done_tx.send(CrawlDone { seq, url, t, result }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx); // coordinator holds the only receiver

            // --- RankingModule thread. ---
            scope.spawn(move |_| {
                let mut ranking = RankingModule::new(ranking_config);
                while let Ok(req) = rank_req_rx.recv() {
                    if rank_res_tx.send(rank(&mut ranking, req)).is_err() {
                        break;
                    }
                }
            });

            // --- Coordinator: the UpdateModule role. ---
            // Spans are coordinator-only: workers never touch the sink, so
            // recording cannot perturb the race-free batch application.
            let mut fetch_span: Option<SpanGuard> = None;
            let mut rank_in_flight = false;
            // A restored/replayed engine re-issues the outstanding request.
            if let Some(req) = self.unsent_rank_request.take() {
                if rank_req_tx.send(req).is_ok() {
                    rank_in_flight = true;
                }
            }
            loop {
                let t = self.clock.t;
                // The horizon check comes *first*: boundaries past `end`
                // belong to whoever resumes the run, and processing them
                // here would make the trajectory depend on where this
                // particular run happens to stop.
                if t >= end {
                    break;
                }
                // Sample at the grid instant, not the slot that crossed
                // it: slot times depend on the crawl rate, and fleet
                // shards run at ownership-apportioned rates yet must
                // sample on one shared grid to merge.
                while self.clock.next_sample <= t {
                    let ts = self.clock.next_sample;
                    self.sample_metrics(universe, ts);
                    self.clock.next_sample += self.config.sample_interval_days;
                }
                if t >= self.clock.next_ranking {
                    fetch_span = None;
                    let _pass =
                        self.obs.span(Stage::Pass, LogicalClock::new(t, self.fetch_seq));
                    self.obs.gauge("queue_depth", self.queue.len() as f64);
                    // The response to the request issued one interval ago
                    // lands here — a fixed application point, not "whenever
                    // the ranking thread finishes", so replay can reproduce
                    // it. Waiting only at the pass boundary keeps ranking
                    // off the fetch hot path, as §5.3 prescribes.
                    if rank_in_flight {
                        let res = rank_res_rx.recv().expect("ranking thread alive");
                        self.apply_ranking(res);
                        rank_in_flight = false;
                    }
                    self.rank_pending = true;
                    // Advance the clock *before* the hook: a snapshot must
                    // record this pass as done, or the restored engine
                    // would run the boundary twice.
                    self.clock.next_ranking += self.config.ranking_interval_days;
                    if hook.active() {
                        hook.on_pass_boundary(t, &mut || self.export_state());
                    }
                    if let Some(publisher) = self.publisher.as_mut() {
                        let _swap = self
                            .obs
                            .span(Stage::ViewSwap, LogicalClock::new(t, self.fetch_seq));
                        publisher.publish(ViewBoundary {
                            t,
                            fetch_seq: self.fetch_seq,
                            passes: self.ranking_applied,
                            pages: BoundaryPages::Stored {
                                collection: &self.collection,
                                update: &self.update,
                            },
                            metrics: &self.metrics,
                        });
                    }
                    let req = RankRequest {
                        collection: self.collection.clone(),
                        all_urls: self.all_urls.clone(),
                    };
                    if rank_req_tx.send(req).is_ok() {
                        rank_in_flight = true;
                    }
                }
                // Dispatch one batch of fetch slots: at most `workers`
                // jobs, never crossing the next boundary. Workers race to
                // grab them; slot order is restored at application time.
                let horizon = self.clock.next_sample.min(self.clock.next_ranking).min(end);
                if self.obs.enabled() && fetch_span.is_none() && !self.queue.is_empty() {
                    fetch_span = Some(
                        self.obs.span(Stage::FetchBatch, LogicalClock::new(t, self.fetch_seq)),
                    );
                }
                let mut dispatched = 0usize;
                let mut progressed = false;
                while dispatched < workers && self.clock.t < horizon {
                    let Some(visit) = self.queue.pop() else { break };
                    self.queued.remove(visit.url.page);
                    if self.routing.is_foreign(visit.url.site) {
                        // Residual foreign entry (only possible in a
                        // frontier inherited from a pre-routing
                        // checkpoint): routed links, not fetches, cross
                        // shard boundaries — burn the slot without
                        // spending a fetch or a sequence number.
                        self.clock.t += step;
                        progressed = true;
                        continue;
                    }
                    self.fetch_seq += 1;
                    work_tx
                        .send((self.fetch_seq, visit.url, self.clock.t))
                        .expect("workers alive");
                    dispatched += 1;
                    self.clock.t += step;
                    progressed = true;
                }
                if dispatched == 0 {
                    // Nothing to crawl this slot.
                    if !progressed {
                        self.clock.t += step;
                    }
                    continue;
                }
                let mut batch: Vec<CrawlDone> = (0..dispatched)
                    .map(|_| done_rx.recv().expect("worker alive"))
                    .collect();
                batch.sort_by_key(|d| d.seq);
                for done in batch {
                    self.apply_result(universe, done, hook);
                }
            }
            drop(fetch_span); // close the trailing fetch batch, if open
            drop(work_tx); // workers exit
            drop(rank_req_tx); // ranking thread exits
            // Apply the in-flight ranking outcome rather than discarding
            // the work; the application point (run end) is deterministic.
            // The outstanding request is consumed here, so a state
            // exported after the run must not re-issue one.
            if rank_in_flight {
                if let Ok(res) = rank_res_rx.recv() {
                    self.apply_ranking(res);
                }
                self.rank_pending = false;
            }
        })
        .expect("crawler threads do not panic");
    }

    fn apply_result(&mut self, universe: &WebUniverse, done: CrawlDone, hook: &mut dyn CrawlHook) {
        let CrawlDone { seq, url, t, result } = done;
        if hook.active() {
            hook.on_fetch(&FetchRecord { seq, url, t, result: result.clone() });
        }
        match result {
            Ok(outcome) => {
                self.obs.add("fetch_ok_total", 1);
                self.metrics.record_fetch(true);
                if self.collection.contains(url.page) {
                    self.collection.update(url.page, outcome.checksum, outcome.links.clone(), t);
                } else {
                    let admitted = self.admissions.remove(url.page);
                    if self.collection.is_full() {
                        if !admitted {
                            return;
                        }
                        if let Some(victim) = self.collection.least_important() {
                            if let Some(stored) = self.collection.discard(victim) {
                                self.queue.remove(stored.url);
                                self.queued.remove(victim);
                                self.update.forget(victim);
                            }
                        }
                    }
                    self.collection.save(url, outcome.checksum, outcome.links.clone(), t);
                    let birth = universe.page(url.page).birth;
                    if birth >= self.run_start {
                        self.metrics.record_admission_latency(t - birth);
                        let found = self
                            .all_urls
                            .info(url)
                            .map(|i| i.discovered)
                            .unwrap_or(t);
                        self.metrics.record_discovery_latency(t - found);
                    }
                }
                for link in &outcome.links {
                    if self.routing.is_foreign(link.site) {
                        // Another shard owns this site: queue the sighting
                        // for the next fleet exchange instead of entering
                        // the local frontier. Every sighting is routed
                        // (no dedup), mirroring the per-sighting
                        // `add_in_link` evidence a single node collects.
                        self.routing.outbox.push(RoutedLink {
                            seq,
                            from: url.page,
                            url: *link,
                        });
                        continue;
                    }
                    let first_sighting = !self.all_urls.contains(*link);
                    self.all_urls.add_in_link(*link, url.page, t);
                    if !self.collection.is_full() && !self.collection.contains(link.page) {
                        if first_sighting {
                            if self.queued.insert(link.page) {
                                self.queue.push_front(*link);
                            }
                        } else {
                            self.enqueue(*link, t);
                        }
                    }
                }
                let due = self.update.next_due(url.page, t);
                self.enqueue(url, due);
            }
            Err(FetchError::NotFound) => {
                self.obs.add("fetch_not_found_total", 1);
                self.metrics.record_fetch(false);
                self.all_urls.mark_dead(url, t);
                self.admissions.remove(url.page);
                if self.collection.discard(url.page).is_some() {
                    self.update.forget(url.page);
                }
            }
            Err(FetchError::Transient) => {
                self.obs.add("fetch_transient_total", 1);
                self.metrics.record_fetch(false);
                self.enqueue(url, t + 0.25);
            }
            Err(FetchError::RateLimited { retry_at }) => {
                self.obs.add("fetch_rate_limited_total", 1);
                self.enqueue(url, retry_at.max(t + 0.01));
            }
        }
    }

    fn apply_ranking(&mut self, res: RankResponse) {
        self.ranking_applied += 1;
        for (p, importance) in res.importance {
            if let Some(stored) = self.collection.get_mut(p) {
                stored.importance = importance;
            }
        }
        for (_victim, admit) in res.replacements {
            // The snapshot may be stale: admit may already be stored.
            if self.collection.contains(admit.page) {
                continue;
            }
            self.admissions.insert(admit.page);
            if self.queued.insert(admit.page) {
                self.queue.push_front(admit);
            }
        }
        self.update
            .reallocate(&self.collection, self.config.crawl_rate_per_day);
    }

    fn sample_metrics(&mut self, universe: &WebUniverse, t: f64) {
        if self.collection.is_empty() {
            self.metrics.sample(t, 0.0, 0.0);
            return;
        }
        let mut fresh = 0usize;
        let mut age_sum = 0.0;
        let n = self.collection.len();
        for (p, stored) in self.collection.iter() {
            if universe.copy_is_fresh(p, stored.last_crawl, t) {
                fresh += 1;
            } else {
                let page = universe.page(p);
                let staled_at = universe
                    .first_change_after(p, stored.last_crawl)
                    .unwrap_or(page.death)
                    .min(page.death);
                age_sum += (t - staled_at).max(0.0);
            }
        }
        self.metrics.sample(t, fresh as f64 / n as f64, age_sum / n as f64);
    }

    /// Emit every pending grid sample up to `until`, then the closing
    /// sample at `until` itself (a no-op when `until` sits on the grid —
    /// [`CrawlMetrics::sample`] dedups the identical instant). Every
    /// drive boundary flushes through here, so the sampled instants are a
    /// pure function of the drive horizons and the sampling cadence —
    /// never of the crawl rate, whose slot times vary per fleet shard.
    fn flush_samples(&mut self, universe: &WebUniverse, until: f64) {
        while self.clock.next_sample <= until {
            let ts = self.clock.next_sample;
            self.sample_metrics(universe, ts);
            self.clock.next_sample += self.config.sample_interval_days;
        }
        self.sample_metrics(universe, until);
    }
}

impl CrawlEngine for ThreadedCrawler {
    fn kind(&self) -> EngineKind {
        EngineKind::Threaded { workers: self.workers }
    }

    fn started(&self) -> bool {
        self.seeded
    }

    fn clock(&self) -> EngineClock {
        self.clock
    }

    /// Advance to day `until`. The first call starts the run at day 0;
    /// later calls continue from the frozen clock (including after
    /// [`crate::engine::restore`] + replay, where the continuation is
    /// bit-identical to a never-interrupted run).
    ///
    /// `fetcher` is ignored: the workers spawn their own
    /// [`SimFetcher`]s against `universe` with unrestricted politeness,
    /// under which the simulated fetch is a pure function of `(url, t)` —
    /// that is what makes the worker pool deterministic and the engine
    /// checkpointable without fetcher state.
    ///
    /// Each call closes with a metrics sample at `until` and applies the
    /// in-flight ranking response. A continued in-memory run therefore
    /// carries artifacts a single longer run would not have at that
    /// point; the checkpoint-recovery path does not, because snapshots
    /// are captured at pass boundaries.
    fn drive(
        &mut self,
        universe: &WebUniverse,
        _fetcher: &mut dyn Fetcher,
        hook: &mut dyn CrawlHook,
        until: f64,
    ) -> Result<&CrawlMetrics, WebEvoError> {
        if !self.seeded {
            if until <= self.clock.t {
                return Err(WebEvoError::InvalidState(format!(
                    "drive target {until} must lie beyond the start day {}",
                    self.clock.t
                )));
            }
            self.begin_run(universe);
        } else if until <= self.clock.t {
            return Err(WebEvoError::InvalidState(format!(
                "drive target {until} must lie beyond the engine clock {}",
                self.clock.t
            )));
        }
        self.metrics.observe_speed(self.config.crawl_rate_per_day);
        let _drive = self.obs.span(Stage::Drive, LogicalClock::new(self.clock.t, self.fetch_seq));
        self.advance_live(universe, until, hook);
        self.flush_samples(universe, until);
        Ok(&self.metrics)
    }

    /// Re-apply the write-ahead-log tail after restoring a snapshot: the
    /// deterministic batch schedule is re-derived from the restored state
    /// and each slot consumes its logged outcome instead of fetching.
    /// Ranking passes crossed during replay run synchronously (same
    /// request/response pipeline, no thread), and routed batches
    /// re-inject at the exchange barrier they were logged at. Records
    /// already covered by the snapshot are skipped. `fetcher` is ignored,
    /// as in [`CrawlEngine::drive`].
    fn replay(
        &mut self,
        universe: &WebUniverse,
        _fetcher: &mut dyn Fetcher,
        events: &[WalEvent],
    ) -> Result<(), WebEvoError> {
        if !self.seeded {
            // Day-0 snapshot (killed before the first cadence snapshot):
            // an empty tail leaves the fresh engine untouched; a non-empty
            // one starts the run and replays it from the top.
            if events.is_empty() {
                return Ok(());
            }
            self.begin_run(universe);
        }
        let skip = events.partition_point(|e| e.seq() <= self.fetch_seq);
        if let Some(first) = events[skip..].first() {
            if first.seq() != self.fetch_seq + 1 {
                return Err(WebEvoError::InvalidState(format!(
                    "WAL gap: snapshot ends at seq {} but the log resumes at {}",
                    self.fetch_seq,
                    first.seq()
                )));
            }
        }
        self.replay_tail(universe, &events[skip..]);
        Ok(())
    }

    /// Capture the full engine state (worker fetchers are stateless: the
    /// simulated fetch is a pure function of `(url, t)` under the
    /// unrestricted politeness the workers run with).
    fn export_state(&self) -> CrawlerState {
        CrawlerState {
            engine: EngineKind::Threaded { workers: self.workers },
            config: EngineConfig::Incremental(self.config.clone()),
            run_start: self.run_start,
            seeded: self.seeded,
            clock: self.clock,
            fetch_seq: self.fetch_seq,
            collection: self.collection.clone(),
            all_urls: self.all_urls.clone(),
            queue: queue_to_entries(&self.queue),
            queued: self.queued.to_vec(),
            admissions: self.admissions.to_vec(),
            update: self.update.clone(),
            ranking_runs: 0,
            ranking_applied: self.ranking_applied,
            rank_pending: self.rank_pending,
            crawl: CrawlModule::default(),
            periodic: None,
            metrics: self.metrics.clone(),
            fetcher: None,
            routing: self.routing.clone(),
        }
    }

    fn metrics(&self) -> &CrawlMetrics {
        &self.metrics
    }

    fn collection(&self) -> Option<&Collection> {
        Some(&self.collection)
    }

    fn collection_len(&self) -> usize {
        self.collection.len()
    }

    fn passes(&self) -> u64 {
        self.ranking_applied
    }

    fn uses_external_fetcher(&self) -> bool {
        false
    }

    fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    fn set_view_publisher(&mut self, publisher: Box<dyn ViewPublisher>) {
        self.publisher = Some(publisher);
    }

    fn set_scope(&mut self, scope: ShardScope) -> Result<(), WebEvoError> {
        if self.seeded {
            return Err(WebEvoError::InvalidState(
                "shard scope must be set before the run starts".into(),
            ));
        }
        self.routing.scope = Some(scope);
        Ok(())
    }

    fn routing(&self) -> Option<&RoutingState> {
        Some(&self.routing)
    }

    fn inject_links(&mut self, links: Vec<RoutedLink>) -> Result<RoutedBatch, WebEvoError> {
        if !self.seeded {
            return Err(WebEvoError::InvalidState(
                "cannot inject routed links before the run starts".into(),
            ));
        }
        let batch = RoutedBatch { seq: self.fetch_seq + 1, t: self.clock.t, links };
        self.apply_routed(batch.clone());
        Ok(batch)
    }

    fn close_sample(&mut self, universe: &WebUniverse, t: f64) {
        if self.seeded {
            self.flush_samples(universe, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{IncrementalCrawler, IncrementalConfig};
    use crate::modules::{EstimatorKind, RevisitStrategy};
    use crate::modules::RankingConfig;
    use webevo_sim::{SimFetcher, UniverseConfig};

    fn config(capacity: usize) -> IncrementalConfig {
        IncrementalConfig {
            capacity,
            crawl_rate_per_day: capacity as f64 / 5.0,
            ranking_interval_days: 2.0,
            revisit: RevisitStrategy::Uniform,
            estimator: EstimatorKind::Ep,
            history_window: 100,
            sample_interval_days: 1.0,
            ranking: RankingConfig::default(),
        }
    }

    /// Drive through the trait; the threaded engine ignores the fetcher.
    fn run(crawler: &mut ThreadedCrawler, u: &WebUniverse, days: f64) {
        let mut unused = SimFetcher::new(u);
        crawler.drive(u, &mut unused, &mut NoopHook, days).expect("drive succeeds");
    }

    #[test]
    fn threaded_fills_collection() {
        let u = WebUniverse::generate(UniverseConfig::test_scale(55));
        let mut crawler = ThreadedCrawler::new(config(50), 4);
        run(&mut crawler, &u, 50.0);
        assert!(
            crawler.collection_len() >= 45,
            "len={}",
            crawler.collection_len()
        );
        assert!(crawler.ranking_applied() > 5);
    }

    #[test]
    fn threaded_matches_single_threaded_statistically() {
        // Fixed composition (no churn, capacity covers every reachable
        // page): any freshness difference is then pure scheduling, which
        // must agree between the engines. Under churn the engines hold
        // *different but equally valid* page sets, because the threaded
        // engine applies ranking one interval later — exactly as in a real
        // concurrent crawler.
        let mut ucfg = UniverseConfig::test_scale(56);
        ucfg.churn = false;
        ucfg.pages_per_site = 20;
        ucfg.window_size = 20;
        let u = WebUniverse::generate(ucfg);
        let capacity = 200; // 10 sites × 20 slots: everything fits
        let mut threaded = ThreadedCrawler::new(config(capacity), 4);
        run(&mut threaded, &u, 60.0);
        let mut fetcher = SimFetcher::new(&u);
        let mut single = IncrementalCrawler::new(config(capacity));
        single.drive(&u, &mut fetcher, &mut NoopHook, 60.0).expect("drive succeeds");
        let f_threaded = threaded.metrics().average_freshness_from(30.0);
        let f_single = single.metrics().average_freshness_from(30.0);
        assert!(
            (f_threaded - f_single).abs() < 0.08,
            "threaded {f_threaded} vs single {f_single}"
        );
    }

    #[test]
    fn single_worker_still_works() {
        let u = WebUniverse::generate(UniverseConfig::test_scale(57));
        let mut crawler = ThreadedCrawler::new(config(30), 1);
        run(&mut crawler, &u, 30.0);
        assert!(crawler.collection_len() >= 25);
    }

    #[test]
    fn threaded_replays_identically() {
        // The deterministic coordinator is a replay contract: same
        // universe, same config, same worker count → bit-identical
        // metrics, run to run. (A free-running coordinator could not
        // promise this; checkpoint recovery builds on it.)
        let u = WebUniverse::generate(UniverseConfig::test_scale(58));
        let run_once = || {
            let mut crawler = ThreadedCrawler::new(config(40), 4);
            run(&mut crawler, &u, 40.0);
            (
                crawler.metrics().fetches,
                crawler.metrics().failed_fetches,
                crawler
                    .metrics()
                    .freshness
                    .rows()
                    .collect::<Vec<(f64, f64)>>(),
            )
        };
        let a = run_once();
        assert!(a.0 > 0, "the run should actually crawl");
        assert_eq!(a, run_once());
    }

    #[test]
    fn worker_count_changes_schedule_but_not_safety() {
        // More workers = larger dispatch batches = slightly different
        // schedules; both must fill the collection and stay deterministic
        // for their own worker count.
        let u = WebUniverse::generate(UniverseConfig::test_scale(59));
        for workers in [1, 3, 8] {
            let mut crawler = ThreadedCrawler::new(config(40), workers);
            run(&mut crawler, &u, 40.0);
            assert!(
                crawler.collection_len() >= 35,
                "workers={workers} len={}",
                crawler.collection_len()
            );
        }
    }

    #[test]
    fn state_roundtrip_preserves_continuation() {
        // Export at the end of a run, rebuild, and continue both engines:
        // the original and the restored copy must stay in lockstep.
        let u = WebUniverse::generate(UniverseConfig::test_scale(60));
        let mut original = ThreadedCrawler::new(config(30), 2);
        run(&mut original, &u, 21.0);
        let state = original.export_state();
        assert_eq!(state.engine, EngineKind::Threaded { workers: 2 });
        let mut restored = ThreadedCrawler::from_state(state).expect("state restores");
        run(&mut original, &u, 35.0);
        run(&mut restored, &u, 35.0);
        assert_eq!(original.metrics().fetches, restored.metrics().fetches);
        let rows_a: Vec<(f64, f64)> = original.metrics().freshness.rows().collect();
        let rows_b: Vec<(f64, f64)> = restored.metrics().freshness.rows().collect();
        assert_eq!(rows_a, rows_b, "restored engine diverged");
    }

    #[test]
    fn from_state_rejects_foreign_states() {
        let u = WebUniverse::generate(UniverseConfig::test_scale(61));
        let mut crawler = ThreadedCrawler::new(config(20), 2);
        run(&mut crawler, &u, 8.0);
        let mut state = crawler.export_state();
        state.engine = EngineKind::Incremental;
        assert!(matches!(
            ThreadedCrawler::from_state(state),
            Err(WebEvoError::InvalidState(_))
        ));
    }
}
