//! `AllUrls`: every URL the crawler has ever discovered (Figure 12).
//!
//! Besides membership, the structure keeps the evidence the RankingModule
//! needs for its refinement decision: which collection pages link to each
//! discovered URL (footnote 2: PageRank of an uncrawled page is estimated
//! "based on how many pages in the Collection have a link to p"), and
//! whether the URL has been observed dead.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use webevo_types::{PageId, Url};

/// Metadata for one discovered URL.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UrlInfo {
    /// Collection pages known to link here (bounded; enough for importance
    /// estimation).
    pub in_link_sources: BTreeSet<PageId>,
    /// Simulated day the URL was first discovered.
    pub discovered: f64,
    /// The URL returned NotFound at this time (dead pages are not
    /// candidates).
    pub dead_since: Option<f64>,
}

/// The set of all discovered URLs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AllUrls {
    // Ordered by URL: candidate enumeration feeds importance-mass float
    // sums that must replay exactly for a fixed seed.
    urls: BTreeMap<Url, UrlInfo>,
    /// Cap on tracked in-link sources per URL (evidence saturates quickly).
    max_sources: usize,
}

impl AllUrls {
    /// An empty set tracking up to 32 in-link sources per URL.
    pub fn new() -> AllUrls {
        AllUrls { urls: BTreeMap::new(), max_sources: 32 }
    }

    /// Number of URLs discovered.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// True if nothing has been discovered yet.
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// True if the URL is known.
    pub fn contains(&self, url: Url) -> bool {
        self.urls.contains_key(&url)
    }

    /// Register a URL discovered at time `t` (idempotent).
    pub fn discover(&mut self, url: Url, t: f64) {
        self.urls.entry(url).or_insert_with(|| UrlInfo {
            in_link_sources: BTreeSet::new(),
            discovered: t,
            dead_since: None,
        });
    }

    /// Register that collection page `source` links to `url` (discovering
    /// the URL if needed).
    pub fn add_in_link(&mut self, url: Url, source: PageId, t: f64) {
        let info = self.urls.entry(url).or_insert_with(|| UrlInfo {
            in_link_sources: BTreeSet::new(),
            discovered: t,
            dead_since: None,
        });
        if info.in_link_sources.len() < self.max_sources {
            info.in_link_sources.insert(source);
        }
    }

    /// Mark a URL dead (fetch returned NotFound) at time `t`.
    pub fn mark_dead(&mut self, url: Url, t: f64) {
        if let Some(info) = self.urls.get_mut(&url) {
            info.dead_since.get_or_insert(t);
        }
    }

    /// Metadata for a URL.
    pub fn info(&self, url: Url) -> Option<&UrlInfo> {
        self.urls.get(&url)
    }

    /// Candidate URLs for admission: known, not dead, not satisfying
    /// `exclude`, with at least one recorded in-link.
    pub fn candidates<'a>(
        &'a self,
        exclude: &'a dyn Fn(Url) -> bool,
    ) -> impl Iterator<Item = (Url, &'a UrlInfo)> + 'a {
        self.urls.iter().filter_map(move |(&url, info)| {
            if info.dead_since.is_none()
                && !info.in_link_sources.is_empty()
                && !exclude(url)
            {
                Some((url, info))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::SiteId;

    fn url(i: u64) -> Url {
        Url::new(SiteId(0), PageId(i))
    }

    #[test]
    fn discover_is_idempotent() {
        let mut a = AllUrls::new();
        a.discover(url(1), 1.0);
        a.discover(url(1), 9.0);
        assert_eq!(a.len(), 1);
        assert_eq!(a.info(url(1)).unwrap().discovered, 1.0);
    }

    #[test]
    fn in_links_accumulate_and_dedup() {
        let mut a = AllUrls::new();
        a.add_in_link(url(1), PageId(10), 0.0);
        a.add_in_link(url(1), PageId(10), 1.0);
        a.add_in_link(url(1), PageId(11), 2.0);
        assert_eq!(a.info(url(1)).unwrap().in_link_sources.len(), 2);
    }

    #[test]
    fn dead_urls_are_not_candidates() {
        let mut a = AllUrls::new();
        a.add_in_link(url(1), PageId(10), 0.0);
        a.add_in_link(url(2), PageId(10), 0.0);
        a.mark_dead(url(1), 3.0);
        let never = |_| false;
        let cands: Vec<Url> = a.candidates(&never).map(|(u, _)| u).collect();
        assert_eq!(cands, vec![url(2)]);
    }

    #[test]
    fn candidates_require_inlinks_and_respect_exclusion() {
        let mut a = AllUrls::new();
        a.discover(url(1), 0.0); // no in-links: not a candidate
        a.add_in_link(url(2), PageId(10), 0.0);
        a.add_in_link(url(3), PageId(10), 0.0);
        let exclude = |u: Url| u == url(3);
        let cands: Vec<Url> = a.candidates(&exclude).map(|(u, _)| u).collect();
        assert_eq!(cands, vec![url(2)]);
    }

    #[test]
    fn source_cap_bounds_memory() {
        let mut a = AllUrls::new();
        for i in 0..100 {
            a.add_in_link(url(1), PageId(i), 0.0);
        }
        assert_eq!(a.info(url(1)).unwrap().in_link_sources.len(), 32);
    }
}
