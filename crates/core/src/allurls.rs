//! `AllUrls`: every URL the crawler has ever discovered (Figure 12).
//!
//! Besides membership, the structure keeps the evidence the RankingModule
//! needs for its refinement decision: which collection pages link to each
//! discovered URL (footnote 2: PageRank of an uncrawled page is estimated
//! "based on how many pages in the Collection have a link to p"), and
//! whether the URL has been observed dead.
//!
//! Storage is a [`DenseMap`] over the URL's [`PageId`] (page ids are
//! globally unique, so a page determines its URL; the owning site rides in
//! the slot). Candidate enumeration therefore ascends by page id — a
//! deterministic order, which is all the RankingModule needs: its
//! candidate ranking sorts by `(estimate, site, page)`, a total order, so
//! the enumeration order never leaks into replacement decisions.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::BTreeSet;
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{DenseMap, PageId, SiteId, Url};

/// Metadata for one discovered URL.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UrlInfo {
    /// Collection pages known to link here (bounded; enough for importance
    /// estimation).
    pub in_link_sources: BTreeSet<PageId>,
    /// Simulated day the URL was first discovered.
    pub discovered: f64,
    /// The URL returned NotFound at this time (dead pages are not
    /// candidates).
    pub dead_since: Option<f64>,
}

/// One dense slot: the URL's owning site plus its metadata (the page id is
/// the slot index).
#[derive(Clone, Debug)]
struct UrlSlot {
    site: SiteId,
    info: UrlInfo,
}

/// The set of all discovered URLs.
#[derive(Clone, Debug, Default)]
pub struct AllUrls {
    urls: DenseMap<UrlSlot>,
    /// Cap on tracked in-link sources per URL (evidence saturates quickly).
    max_sources: usize,
}

impl AllUrls {
    /// An empty set tracking up to 32 in-link sources per URL.
    pub fn new() -> AllUrls {
        AllUrls { urls: DenseMap::new(), max_sources: 32 }
    }

    /// Number of URLs discovered.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// True if nothing has been discovered yet.
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// True if the URL is known.
    pub fn contains(&self, url: Url) -> bool {
        self.urls.contains(url.page)
    }

    /// Register a URL discovered at time `t` (idempotent).
    pub fn discover(&mut self, url: Url, t: f64) {
        self.urls.or_insert_with(url.page, || UrlSlot {
            site: url.site,
            info: UrlInfo {
                in_link_sources: BTreeSet::new(),
                discovered: t,
                dead_since: None,
            },
        });
    }

    /// Register that collection page `source` links to `url` (discovering
    /// the URL if needed).
    pub fn add_in_link(&mut self, url: Url, source: PageId, t: f64) {
        let max_sources = self.max_sources;
        let slot = self.urls.or_insert_with(url.page, || UrlSlot {
            site: url.site,
            info: UrlInfo {
                in_link_sources: BTreeSet::new(),
                discovered: t,
                dead_since: None,
            },
        });
        if slot.info.in_link_sources.len() < max_sources {
            slot.info.in_link_sources.insert(source);
        }
    }

    /// Mark a URL dead (fetch returned NotFound) at time `t`.
    pub fn mark_dead(&mut self, url: Url, t: f64) {
        if let Some(slot) = self.urls.get_mut(url.page) {
            slot.info.dead_since.get_or_insert(t);
        }
    }

    /// Metadata for a URL.
    pub fn info(&self, url: Url) -> Option<&UrlInfo> {
        self.urls.get(url.page).map(|slot| &slot.info)
    }

    /// The owning site of a known page.
    pub fn site_of(&self, page: PageId) -> Option<SiteId> {
        self.urls.get(page).map(|slot| slot.site)
    }

    /// Remove and return every URL whose site satisfies `departing`, in
    /// ascending page-id order — the donor side of a fleet rebalance.
    pub fn extract_urls(&mut self, departing: impl Fn(SiteId) -> bool) -> Vec<(Url, UrlInfo)> {
        let leaving: Vec<PageId> = self
            .urls
            .iter()
            .filter(|(_, slot)| departing(slot.site))
            .map(|(p, _)| p)
            .collect();
        leaving
            .into_iter()
            .filter_map(|p| {
                self.urls
                    .remove(p)
                    .map(|slot| (Url::new(slot.site, p), slot.info))
            })
            .collect()
    }

    /// Merge a URL record extracted from another shard. Both shards may
    /// know the same URL (each recorded its own sightings), so the merge
    /// is deterministic: in-link evidence unions (ascending, capped),
    /// discovery takes the earlier time, death the earlier observation.
    pub fn absorb(&mut self, url: Url, info: UrlInfo) {
        let max_sources = self.max_sources;
        match self.urls.get_mut(url.page) {
            Some(slot) => {
                let merged: BTreeSet<PageId> = slot
                    .info
                    .in_link_sources
                    .union(&info.in_link_sources)
                    .copied()
                    .take(max_sources)
                    .collect();
                slot.info.in_link_sources = merged;
                slot.info.discovered = slot.info.discovered.min(info.discovered);
                slot.info.dead_since = match (slot.info.dead_since, info.dead_since) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            None => {
                self.urls.insert(url.page, UrlSlot { site: url.site, info });
            }
        }
    }

    /// Candidate URLs for admission: known, not dead, not satisfying
    /// `exclude`, with at least one recorded in-link. Ascending page-id
    /// order.
    pub fn candidates<'a>(
        &'a self,
        exclude: &'a dyn Fn(Url) -> bool,
    ) -> impl Iterator<Item = (Url, &'a UrlInfo)> + 'a {
        self.urls.iter().filter_map(move |(page, slot)| {
            let url = Url::new(slot.site, page);
            if slot.info.dead_since.is_none()
                && !slot.info.in_link_sources.is_empty()
                && !exclude(url)
            {
                Some((url, &slot.info))
            } else {
                None
            }
        })
    }
}

// Serialized exactly like the ordered-map layout this structure replaced
// (`urls` as a sequence of `[url, info]` pairs), so pre-existing JSON
// snapshots decode unchanged. Pair order is ascending page id — identical
// to the old `(site, page)` order whenever ids ascend with sites, and
// immaterial to decoding either way.
impl Serialize for AllUrls {
    fn to_value(&self) -> Value {
        let urls = Value::Seq(
            self.urls
                .iter()
                .map(|(page, slot)| {
                    Value::Seq(vec![
                        Url::new(slot.site, page).to_value(),
                        slot.info.to_value(),
                    ])
                })
                .collect(),
        );
        Value::Map(vec![
            ("urls".to_string(), urls),
            ("max_sources".to_string(), self.max_sources.to_value()),
        ])
    }
}

impl Deserialize for AllUrls {
    fn from_value(v: &Value) -> Result<AllUrls, SerdeError> {
        let urls_value = v
            .get("urls")
            .ok_or_else(|| SerdeError::custom("AllUrls missing `urls`"))?;
        let pairs = Vec::<(Url, UrlInfo)>::from_value(urls_value)?;
        let max_sources = v
            .get("max_sources")
            .ok_or_else(|| SerdeError::custom("AllUrls missing `max_sources`"))?;
        let mut all = AllUrls {
            urls: DenseMap::new(),
            max_sources: usize::from_value(max_sources)?,
        };
        for (url, info) in pairs {
            all.urls.insert(url.page, UrlSlot { site: url.site, info });
        }
        Ok(all)
    }
}

impl BinEncode for UrlInfo {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        let sources: Vec<PageId> = self.in_link_sources.iter().copied().collect();
        sources.bin_encode(out);
        self.discovered.bin_encode(out);
        self.dead_since.bin_encode(out);
    }
}

impl BinDecode for UrlInfo {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<UrlInfo, BinError> {
        Ok(UrlInfo {
            in_link_sources: Vec::<PageId>::bin_decode(r)?.into_iter().collect(),
            discovered: f64::bin_decode(r)?,
            dead_since: Option::bin_decode(r)?,
        })
    }
}

impl BinEncode for UrlSlot {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.site.bin_encode(out);
        self.info.bin_encode(out);
    }
}

impl BinDecode for UrlSlot {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<UrlSlot, BinError> {
        Ok(UrlSlot { site: SiteId::bin_decode(r)?, info: UrlInfo::bin_decode(r)? })
    }
}

impl BinEncode for AllUrls {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.urls.bin_encode(out);
        self.max_sources.bin_encode(out);
    }
}

impl BinDecode for AllUrls {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<AllUrls, BinError> {
        Ok(AllUrls {
            urls: DenseMap::bin_decode(r)?,
            max_sources: usize::bin_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(i: u64) -> Url {
        Url::new(SiteId(0), PageId(i))
    }

    #[test]
    fn discover_is_idempotent() {
        let mut a = AllUrls::new();
        a.discover(url(1), 1.0);
        a.discover(url(1), 9.0);
        assert_eq!(a.len(), 1);
        assert_eq!(a.info(url(1)).unwrap().discovered, 1.0);
    }

    #[test]
    fn in_links_accumulate_and_dedup() {
        let mut a = AllUrls::new();
        a.add_in_link(url(1), PageId(10), 0.0);
        a.add_in_link(url(1), PageId(10), 1.0);
        a.add_in_link(url(1), PageId(11), 2.0);
        assert_eq!(a.info(url(1)).unwrap().in_link_sources.len(), 2);
    }

    #[test]
    fn dead_urls_are_not_candidates() {
        let mut a = AllUrls::new();
        a.add_in_link(url(1), PageId(10), 0.0);
        a.add_in_link(url(2), PageId(10), 0.0);
        a.mark_dead(url(1), 3.0);
        let never = |_| false;
        let cands: Vec<Url> = a.candidates(&never).map(|(u, _)| u).collect();
        assert_eq!(cands, vec![url(2)]);
    }

    #[test]
    fn candidates_require_inlinks_and_respect_exclusion() {
        let mut a = AllUrls::new();
        a.discover(url(1), 0.0); // no in-links: not a candidate
        a.add_in_link(url(2), PageId(10), 0.0);
        a.add_in_link(url(3), PageId(10), 0.0);
        let exclude = |u: Url| u == url(3);
        let cands: Vec<Url> = a.candidates(&exclude).map(|(u, _)| u).collect();
        assert_eq!(cands, vec![url(2)]);
    }

    #[test]
    fn source_cap_bounds_memory() {
        let mut a = AllUrls::new();
        for i in 0..100 {
            a.add_in_link(url(1), PageId(i), 0.0);
        }
        assert_eq!(a.info(url(1)).unwrap().in_link_sources.len(), 32);
    }

    #[test]
    fn candidates_remember_the_owning_site() {
        let mut a = AllUrls::new();
        a.add_in_link(Url::new(SiteId(4), PageId(9)), PageId(1), 0.0);
        let never = |_| false;
        let cands: Vec<Url> = a.candidates(&never).map(|(u, _)| u).collect();
        assert_eq!(cands, vec![Url::new(SiteId(4), PageId(9))]);
    }

    #[test]
    fn serde_roundtrip_preserves_sites_and_sources() {
        let mut a = AllUrls::new();
        a.add_in_link(Url::new(SiteId(3), PageId(7)), PageId(1), 2.0);
        a.add_in_link(Url::new(SiteId(1), PageId(2)), PageId(7), 1.0);
        a.mark_dead(Url::new(SiteId(1), PageId(2)), 5.0);
        let json = serde_json::to_string(&a).unwrap();
        let back: AllUrls = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.info(url(2)).unwrap().dead_since, Some(5.0));
        let never = |_| false;
        let cands: Vec<Url> = back.candidates(&never).map(|(u, _)| u).collect();
        assert_eq!(cands, vec![Url::new(SiteId(3), PageId(7))]);
        // Re-serialization is canonical.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
