//! The query layer of the webevo crawl: immutable epoch-swapped views
//! serving concurrent readers while the crawl keeps writing.
//!
//! The paper's incremental crawler exists to keep a collection fresh *for
//! a search service* (§1: "the incremental crawler may immediately index
//! the new page, right after it is found"). This crate is that service's
//! read path:
//!
//! ```text
//!   crawl thread                         reader threads
//!   ────────────                         ──────────────
//!   drive … pass boundary ──publish──▶ CollectionView (epoch N)
//!        │                                   │ atomic epoch swap
//!        ▼                                   ▼
//!   keep crawling                      QueryService::view() → Arc<epoch N>
//!                                      lookups / stats / top-k, lock-free
//! ```
//!
//! * [`CollectionView`] — an immutable snapshot of the user-visible
//!   collection, built at a pass/cycle boundary from the engine's dense
//!   `PageId` arenas (publication is one pass over the arena). Derived
//!   results — PageRank over the view's link graph, change-rate top-k,
//!   per-site rollups — are memoized lazily, so the first reader pays and
//!   the crawl thread never does.
//! * [`ViewHandle`] — the swap point: an atomic epoch counter over a
//!   `RwLock<Arc<CollectionView>>` held only for an `Arc` clone (readers)
//!   or an `Arc` store (the publisher), so readers never block writers
//!   and writers never block readers beyond those two refcount ops.
//! * [`QueryService`] — the reader API: page lookup by `PageId`/URL,
//!   freshness and age stats (overall and per-site), top-k by PageRank
//!   and by estimated change rate, and epoch metadata including staleness
//!   against the live clock.
//! * [`ServeHandle`] / [`FleetViewCollector`] — the wiring:
//!   `CrawlSession::serve()` installs a boundary publisher on its engine;
//!   a fleet installs per-shard publishers and merges the staged shard
//!   views into one fleet view at every exchange barrier.
//!
//! The hard invariant mirrors observability's: **serving is free**. The
//! publisher is write-only, absent from every snapshot/WAL format, and a
//! served run's checkpoints and metrics are byte-identical to an
//! unserved run's (`tests/determinism.rs` pins this for all three
//! engines and a sharded fleet).
//!
//! # Example: querying a live crawl
//!
//! ```
//! use webevo_core::engine::{CrawlBudget, EngineKind};
//! use webevo_sim::{UniverseConfig, WebUniverse};
//! use webevo_store::CrawlSession;
//!
//! let universe = WebUniverse::generate(UniverseConfig::test_scale(1));
//! let mut session = CrawlSession::builder()
//!     .engine(EngineKind::Incremental)
//!     .budget(CrawlBudget::paper_monthly(20).with_cycle_days(5.0))
//!     .universe(&universe)
//!     .build()
//!     .expect("a valid session");
//!
//! // Attach the serving layer; readers can query from other threads
//! // while the crawl runs (here: before, concurrently, and after).
//! let queries = session.serve();
//! assert_eq!(queries.epoch(), 0, "empty epoch-0 view before the first boundary");
//!
//! let reader = std::thread::spawn({
//!     let queries = queries.clone();
//!     move || queries.epoch_info().pages // answered from whatever epoch is current
//! });
//! session.run(6.0).expect("the crawl runs");
//! reader.join().expect("reader thread");
//!
//! // The crawl crossed pass boundaries, so epochs advanced; one view()
//! // snapshot answers any number of queries from a single epoch.
//! let view = queries.view();
//! assert!(view.epoch() >= 1);
//! assert!(!view.is_empty());
//! assert_eq!(view.top_k_pagerank(3).len(), 3.min(view.len()));
//! assert!(view.staleness(7.0) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod query;
pub mod view;

pub use fleet::FleetViewCollector;
pub use query::{QueryService, ServeHandle, ViewHandle};
pub use view::{CollectionView, EpochInfo, FreshnessStats, SiteRollup, ViewPage};
