//! Fleet serving: merging per-shard boundary views into one fleet view.
//!
//! Each shard's engine gets a [`ViewPublisher`] that stashes the shard's
//! latest boundary parts into a shared slot; the fleet coordinator calls
//! [`FleetViewCollector::merge_and_publish`] at every exchange barrier
//! (and after the final drive), where all shards are quiescent at the
//! same simulated day. The merge is cheap by construction: shards own
//! disjoint `PageId` sets and each slot's pages arrive sorted ascending,
//! so the fleet view is a k-way merge of sorted runs, and the metrics
//! merge is the same capacity-weighted pooling `FleetSession` uses for
//! its end-of-run metrics.

use crate::query::{QueryService, ServeHandle};
use crate::view::{CollectionView, ViewPage};
use std::sync::{Arc, Mutex};
use webevo_core::view::{ViewBoundary, ViewPublisher};
use webevo_core::CrawlMetrics;
use webevo_types::{ShardId, WebEvoError};

/// One shard's latest published boundary, staged for the next merge.
struct ShardParts {
    day: f64,
    fetch_seq: u64,
    passes: u64,
    pages: Vec<ViewPage>,
    metrics: CrawlMetrics,
}

/// Shared collection point for per-shard views, owned by the fleet
/// coordinator.
pub struct FleetViewCollector {
    serve: ServeHandle,
    /// Per-shard staging slots, written by shard drive threads at their
    /// pass boundaries and drained (read) by the coordinator at barriers.
    slots: Mutex<Vec<Option<ShardParts>>>,
    /// Capacity weights for the metrics merge, ascending shard order —
    /// the same weights `FleetSession` merges its end-of-run metrics
    /// with.
    weights: Vec<f64>,
}

impl FleetViewCollector {
    /// A collector for `weights.len()` shards with the given capacity
    /// weights.
    pub fn new(serve: ServeHandle, weights: Vec<f64>) -> Arc<FleetViewCollector> {
        let shards = weights.len();
        Arc::new(FleetViewCollector {
            serve,
            slots: Mutex::new((0..shards).map(|_| None).collect()),
            weights,
        })
    }

    /// The publisher to install on shard `shard`'s engine.
    pub fn publisher_for(self: &Arc<Self>, shard: ShardId) -> Box<dyn ViewPublisher> {
        Box::new(ShardPublisher { collector: Arc::clone(self), shard })
    }

    /// A reader-facing service over the merged fleet view.
    pub fn service(&self) -> QueryService {
        self.serve.service()
    }

    /// Merge the staged shard views into one fleet view and publish it as
    /// the next epoch. Returns `false` (and publishes nothing) until
    /// every shard has staged at least one boundary — before the first
    /// barrier the epoch-0 empty view keeps serving. Call only from the
    /// coordinator with all shards quiescent.
    pub fn merge_and_publish(&self) -> Result<bool, WebEvoError> {
        let slots = self.slots.lock().expect("no shard panicked holding the view slots");
        if slots.iter().any(|slot| slot.is_none()) {
            return Ok(false);
        }
        // The fleet stamp: all shards sit at the same barrier day (the
        // max covers a shard whose final boundary landed a hair earlier);
        // fetch sequences are per-shard counters, so the fleet total is
        // their sum; passes advance in lockstep, so the fleet count is
        // the slowest shard's.
        let day = slots
            .iter()
            .flatten()
            .map(|p| p.day)
            .fold(f64::NEG_INFINITY, f64::max);
        let fetch_seq = slots.iter().flatten().map(|p| p.fetch_seq).sum();
        let passes = slots.iter().flatten().map(|p| p.passes).min().unwrap_or(0);
        let mut pages: Vec<ViewPage> = Vec::with_capacity(
            slots.iter().flatten().map(|p| p.pages.len()).sum(),
        );
        for parts in slots.iter().flatten() {
            pages.extend(parts.pages.iter().cloned());
        }
        // Disjoint sorted runs concatenated in shard order: one sort
        // restores global PageId order (cheap — runs are pre-sorted).
        pages.sort_by_key(|p| p.page);
        // Shards sample on one shared grid, but a pass boundary can fire
        // a hair before or after a shard's own sampling instant, so the
        // *staged* series may trail each other by a row. Truncate every
        // shard to the common prefix (the slowest shard's last sample)
        // before the weighted merge, which requires identical grids.
        let rows = slots
            .iter()
            .flatten()
            .map(|p| p.metrics.freshness.len())
            .min()
            .unwrap_or(0);
        let truncated: Vec<CrawlMetrics> = slots
            .iter()
            .flatten()
            .map(|p| truncate_series(&p.metrics, rows))
            .collect();
        let parts: Vec<(f64, &CrawlMetrics)> = self
            .weights
            .iter()
            .zip(truncated.iter())
            .map(|(&w, m)| (w, m))
            .collect();
        let metrics = CrawlMetrics::merge_weighted(&parts)?;
        let epoch = self.serve.view_handle().epoch() + 1;
        self.serve
            .view_handle()
            .install(CollectionView::from_parts(epoch, day, fetch_seq, passes, pages, metrics));
        Ok(true)
    }
}

/// A copy of `metrics` with the freshness/age series cut to the first
/// `rows` samples (the counters and latency summaries pass through
/// unchanged — they are totals, not grids).
fn truncate_series(metrics: &CrawlMetrics, rows: usize) -> CrawlMetrics {
    let mut out = metrics.clone();
    out.freshness = Default::default();
    out.age = Default::default();
    for ((t, fresh), (_, age)) in metrics
        .freshness
        .rows()
        .zip(metrics.age.rows())
        .take(rows)
    {
        out.sample(t, fresh, age);
    }
    out
}

impl std::fmt::Debug for FleetViewCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetViewCollector")
            .field("shards", &self.weights.len())
            .field("epoch", &self.serve.view_handle().epoch())
            .finish()
    }
}

/// The per-shard boundary observer: stages the shard's latest view parts
/// for the coordinator's next merge. Runs on the shard's drive thread.
struct ShardPublisher {
    collector: Arc<FleetViewCollector>,
    shard: ShardId,
}

impl ViewPublisher for ShardPublisher {
    fn publish(&mut self, boundary: ViewBoundary<'_>) {
        // Build the shard's rows via the single-engine path (epoch number
        // is irrelevant for staged parts; the merged view gets its own).
        let staged = CollectionView::from_boundary(0, &boundary);
        let (day, fetch_seq, passes) =
            (boundary.t, boundary.fetch_seq, boundary.passes);
        let pages = staged.pages().to_vec();
        let metrics = staged.metrics().clone();
        let mut slots =
            self.collector.slots.lock().expect("no shard panicked holding the view slots");
        slots[self.shard.0 as usize] =
            Some(ShardParts { day, fetch_seq, passes, pages, metrics });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_core::view::BoundaryPages;
    use webevo_core::{Collection, EstimatorKind, RevisitStrategy, UpdateModule};
    use webevo_obs::ObsSink;
    use webevo_types::{Checksum, PageId, SiteId, Url};

    fn boundary_parts(
        ids: &[u64],
        site: u32,
        t: f64,
    ) -> (Collection, UpdateModule, CrawlMetrics) {
        let mut collection = Collection::new(ids.len().max(1), 10);
        for &id in ids {
            collection.save(Url::new(SiteId(site), PageId(id)), Checksum(id), vec![], t);
        }
        let update = UpdateModule::new(RevisitStrategy::Uniform, EstimatorKind::Ep, 30.0);
        let mut metrics = CrawlMetrics::default();
        metrics.sample(t, 1.0, 0.0);
        (collection, update, metrics)
    }

    fn publish(
        collector: &Arc<FleetViewCollector>,
        shard: u32,
        ids: &[u64],
        t: f64,
        passes: u64,
    ) {
        let (collection, update, metrics) = boundary_parts(ids, shard, t);
        let mut publisher = collector.publisher_for(ShardId(shard));
        publisher.publish(ViewBoundary {
            t,
            fetch_seq: 10 * (shard as u64 + 1),
            passes,
            pages: BoundaryPages::Stored { collection: &collection, update: &update },
            metrics: &metrics,
        });
    }

    #[test]
    fn merge_waits_for_every_shard_then_interleaves_pages() {
        let collector =
            FleetViewCollector::new(ServeHandle::new(ObsSink::noop()), vec![2.0, 2.0]);
        let service = collector.service();

        publish(&collector, 0, &[0, 4], 6.0, 1);
        // Shard 1 has not published: nothing to merge yet.
        assert!(!collector.merge_and_publish().expect("merge runs"));
        assert_eq!(service.epoch(), 0);

        publish(&collector, 1, &[1, 3], 6.0, 1);
        assert!(collector.merge_and_publish().expect("merge runs"));
        let view = service.view();
        assert_eq!(view.epoch(), 1);
        let ids: Vec<u64> = view.pages().iter().map(|p| p.page.0).collect();
        assert_eq!(ids, [0, 1, 3, 4], "global ascending PageId order restored");
        let info = view.info();
        assert_eq!(info.fetch_seq, 30, "fleet fetch_seq is the shard sum");
        assert_eq!(info.passes, 1);
        assert_eq!(info.day, 6.0);

        // Later barriers advance the epoch with refreshed shard parts.
        publish(&collector, 0, &[0, 4, 6], 12.0, 2);
        publish(&collector, 1, &[1, 3], 12.0, 2);
        assert!(collector.merge_and_publish().expect("merge runs"));
        assert_eq!(service.epoch(), 2);
        assert_eq!(service.epoch_info().pages, 5);
    }
}
