//! The epoch swap and the reader-facing [`QueryService`].
//!
//! [`ViewHandle`] is the swap point: one `RwLock<Arc<CollectionView>>`
//! plus an atomic epoch counter. Publication takes the write lock just
//! long enough to store a new `Arc` (readers briefly clone the current
//! `Arc` under the read lock and then answer entirely lock-free from
//! their snapshot), so readers never block writers for longer than an
//! `Arc` store and writers never block readers for longer than an `Arc`
//! clone. The workspace forbids `unsafe`, so this is the swap primitive —
//! the critical sections are two reference-count operations, which is
//! what the `repro serve` swap-stall gate measures.

use crate::view::{CollectionView, EpochInfo, FreshnessStats, SiteRollup, ViewPage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use webevo_core::view::{ViewBoundary, ViewPublisher};
use webevo_obs::ObsSink;
use webevo_types::{PageId, Url};

/// The atomic epoch pointer readers and the publisher share.
#[derive(Debug)]
pub struct ViewHandle {
    current: RwLock<Arc<CollectionView>>,
    epoch: AtomicU64,
}

impl ViewHandle {
    /// A fresh handle holding the epoch-0 empty view, so readers that
    /// attach before the first pass boundary get sane (empty) answers.
    pub fn new() -> Arc<ViewHandle> {
        Arc::new(ViewHandle {
            current: RwLock::new(Arc::new(CollectionView::empty())),
            epoch: AtomicU64::new(0),
        })
    }

    /// The current epoch number, without touching the view lock.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Snapshot the current view. The read lock is held for one `Arc`
    /// clone; every query answered from the returned `Arc` is consistent
    /// with exactly this epoch.
    pub fn view(&self) -> Arc<CollectionView> {
        Arc::clone(&self.current.read().expect("no publisher panicked holding the view lock"))
    }

    /// Swap a new view in and advance the epoch counter.
    pub fn install(&self, view: CollectionView) {
        let epoch = view.epoch();
        *self.current.write().expect("no reader panicked holding the view lock") =
            Arc::new(view);
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// The serving attachment for one engine: hands out the boundary-side
/// [`ViewPublisher`] and any number of reader-side [`QueryService`]s,
/// all sharing one [`ViewHandle`].
#[derive(Clone, Debug)]
pub struct ServeHandle {
    handle: Arc<ViewHandle>,
    obs: ObsSink,
}

impl ServeHandle {
    /// Create a serving attachment. Pass the session's [`ObsSink`] to get
    /// `serve_epoch`/`serve_view_pages` gauges and per-query latency
    /// histograms; the no-op sink serves without recording.
    pub fn new(obs: ObsSink) -> ServeHandle {
        ServeHandle { handle: ViewHandle::new(), obs }
    }

    /// The shared swap point.
    pub fn view_handle(&self) -> &Arc<ViewHandle> {
        &self.handle
    }

    /// A publisher to install on an engine
    /// ([`CrawlEngine::set_view_publisher`](webevo_core::CrawlEngine::set_view_publisher)).
    /// May be called again after engine recovery — epochs keep counting
    /// from the handle's current epoch.
    pub fn publisher(&self) -> Box<dyn ViewPublisher> {
        Box::new(EpochPublisher { handle: Arc::clone(&self.handle), obs: self.obs.clone() })
    }

    /// A reader-facing query service. Cheap to clone and `Send + Sync`:
    /// hand one to each reader thread.
    pub fn service(&self) -> QueryService {
        QueryService { handle: Arc::clone(&self.handle), obs: self.obs.clone() }
    }
}

/// The boundary-side publisher: builds a [`CollectionView`] from each
/// pass boundary and swaps it in as the next epoch.
struct EpochPublisher {
    handle: Arc<ViewHandle>,
    obs: ObsSink,
}

impl ViewPublisher for EpochPublisher {
    fn publish(&mut self, boundary: ViewBoundary<'_>) {
        let epoch = self.handle.epoch() + 1;
        let view = CollectionView::from_boundary(epoch, &boundary);
        let pages = view.len();
        self.handle.install(view);
        if self.obs.enabled() {
            self.obs.gauge("serve_epoch", epoch as f64);
            self.obs.gauge("serve_view_pages", pages as f64);
        }
    }
}

/// Concurrent read access to the latest published view. Every method
/// snapshots the current epoch once and answers entirely from that
/// snapshot; use [`QueryService::view`] directly to run several queries
/// against one consistent epoch.
#[derive(Clone, Debug)]
pub struct QueryService {
    handle: Arc<ViewHandle>,
    obs: ObsSink,
}

impl QueryService {
    /// Snapshot the current view for multi-query consistency.
    pub fn view(&self) -> Arc<CollectionView> {
        self.handle.view()
    }

    /// The current epoch number (no view lock taken).
    pub fn epoch(&self) -> u64 {
        self.handle.epoch()
    }

    fn timed<R>(&self, f: impl FnOnce(&CollectionView) -> R) -> R {
        let view = self.handle.view();
        if !self.obs.enabled() {
            return f(&view);
        }
        let start = Instant::now();
        let out = f(&view);
        self.obs.observe("serve_query_us", start.elapsed().as_micros() as f64);
        out
    }

    /// Epoch metadata of the current view.
    pub fn epoch_info(&self) -> EpochInfo {
        self.timed(|v| v.info())
    }

    /// How many days the live clock (`live_day`) has moved past the
    /// current view.
    pub fn staleness(&self, live_day: f64) -> f64 {
        self.timed(|v| v.staleness(live_day))
    }

    /// Look a page up by id.
    pub fn lookup(&self, page: PageId) -> Option<ViewPage> {
        self.timed(|v| v.get(page).cloned())
    }

    /// Look a page up by URL (site-checked where the view records sites).
    pub fn lookup_url(&self, url: Url) -> Option<ViewPage> {
        self.timed(|v| v.lookup_url(url).cloned())
    }

    /// Overall freshness/age statistics of the current view.
    pub fn freshness(&self) -> FreshnessStats {
        self.timed(|v| v.freshness())
    }

    /// Per-site rollups of the current view, ascending by `SiteId`.
    pub fn site_rollups(&self) -> Vec<SiteRollup> {
        self.timed(|v| v.site_rollups().to_vec())
    }

    /// Top `k` pages by PageRank over the current view's link graph.
    pub fn top_k_pagerank(&self, k: usize) -> Vec<(PageId, f64)> {
        self.timed(|v| v.top_k_pagerank(k))
    }

    /// Top `k` pages by estimated change rate.
    pub fn top_k_change_rate(&self, k: usize) -> Vec<(PageId, f64)> {
        self.timed(|v| v.top_k_change_rate(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_core::CrawlMetrics;
    use webevo_types::{Checksum, SiteId};

    fn test_view(epoch: u64, ids: &[u64]) -> CollectionView {
        let pages = ids
            .iter()
            .map(|&id| ViewPage {
                page: PageId(id),
                site: Some(SiteId(0)),
                checksum: Checksum(id),
                last_crawl: 0.0,
                crawl_count: 1,
                links: Vec::new(),
                change_rate: 0.0,
                importance: 1.0,
            })
            .collect();
        CollectionView::from_parts(epoch, epoch as f64, 0, epoch, pages, CrawlMetrics::default())
    }

    #[test]
    fn handle_starts_at_the_empty_epoch_and_swaps_forward() {
        let serve = ServeHandle::new(ObsSink::noop());
        let service = serve.service();
        assert_eq!(service.epoch(), 0);
        assert_eq!(service.epoch_info().pages, 0);

        serve.view_handle().install(test_view(1, &[3, 7]));
        assert_eq!(service.epoch(), 1);
        assert_eq!(service.epoch_info().pages, 2);
        assert_eq!(service.lookup(PageId(7)).unwrap().page, PageId(7));
        assert!(service.lookup(PageId(4)).is_none());
    }

    #[test]
    fn snapshots_outlive_later_swaps() {
        let serve = ServeHandle::new(ObsSink::noop());
        serve.view_handle().install(test_view(1, &[1]));
        let snapshot = serve.service().view();
        serve.view_handle().install(test_view(2, &[1, 2, 3]));
        // The old snapshot still answers from epoch 1, the handle from 2.
        assert_eq!(snapshot.epoch(), 1);
        assert_eq!(snapshot.len(), 1);
        assert_eq!(serve.service().view().epoch(), 2);
    }

    #[test]
    fn recorded_queries_land_latency_observations() {
        let obs = ObsSink::recording();
        let serve = ServeHandle::new(obs.clone());
        serve.view_handle().install(test_view(1, &[1, 2]));
        let service = serve.service();
        let _ = service.epoch_info();
        let _ = service.lookup(PageId(2));
        let merged = obs.merged_registry().expect("one sink");
        let hist = merged.histogram("serve_query_us").expect("queries recorded");
        assert_eq!(hist.count(), 2);
    }
}
