//! The immutable, epoch-numbered [`CollectionView`] and its per-page rows.
//!
//! A view is built once, on the crawl thread, from the borrowed boundary
//! arenas — that single pass over the dense `PageId` arena is the entire
//! publication cost. Everything derived (PageRank over the view's link
//! graph, change-rate top-k, per-site rollups) is memoized lazily behind
//! [`OnceLock`]s, so the first *reader* who asks pays for it, off the
//! crawl thread, and every later reader shares the result.

use std::sync::OnceLock;
use webevo_core::view::{BoundaryPages, ViewBoundary};
use webevo_core::CrawlMetrics;
use webevo_graph::pagegraph::PageGraph;
use webevo_graph::pagerank::{pagerank, PageRankConfig, PageRankScores};
use webevo_stats::Summary;
use webevo_types::{Checksum, PageId, SiteId, Url};

/// One page of a [`CollectionView`]: the queryable projection of a stored
/// page at the boundary the view was published from.
#[derive(Clone, Debug)]
pub struct ViewPage {
    /// The page's global id.
    pub page: PageId,
    /// The owning site (`None` for periodic-engine views, whose
    /// user-visible snapshot does not record site attribution).
    pub site: Option<SiteId>,
    /// Checksum from the most recent crawl.
    pub checksum: Checksum,
    /// Time of the most recent crawl (days).
    pub last_crawl: f64,
    /// Number of crawls of this page (1 for periodic views — the batch
    /// baseline rebuilds from scratch every cycle).
    pub crawl_count: u64,
    /// Out-links extracted at the most recent crawl (empty for periodic
    /// views).
    pub links: Vec<Url>,
    /// Estimated change rate (events/day; 0 for periodic views — the
    /// batch baseline keeps no change histories).
    pub change_rate: f64,
    /// Importance score from the last ranking pass (0 for periodic
    /// views).
    pub importance: f64,
}

/// Epoch metadata of one published view.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochInfo {
    /// The view's epoch number (0 = the initial empty view, before the
    /// first pass boundary).
    pub epoch: u64,
    /// Simulated day of the boundary the view was published from.
    pub day: f64,
    /// Fetch sequence at the boundary (summed across shards for a fleet
    /// view).
    pub fetch_seq: u64,
    /// Completed refinement passes at the boundary (the minimum across
    /// shards for a fleet view).
    pub passes: u64,
    /// Number of pages in the view.
    pub pages: usize,
}

/// Overall freshness/age statistics of a view, read from the crawl's
/// metrics series at the boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FreshnessStats {
    /// Time-averaged freshness of the user-visible collection.
    pub avg_freshness: f64,
    /// Time-averaged mean copy age (days).
    pub avg_age: f64,
    /// The most recent freshness sample, if any: `(day, freshness)`.
    pub latest: Option<(f64, f64)>,
    /// Total fetches issued up to the boundary.
    pub fetches: u64,
    /// Failed fetches up to the boundary.
    pub failed_fetches: u64,
}

/// Per-site rollup of a view's pages, `CrawlMetrics`-style: Welford
/// summaries over the site's pages.
#[derive(Clone, Debug)]
pub struct SiteRollup {
    /// The site.
    pub site: SiteId,
    /// Pages of this site in the view.
    pub pages: usize,
    /// Copy age relative to the view's day (`day - last_crawl`).
    pub copy_age: Summary,
    /// Estimated change rates (events/day).
    pub change_rate: Summary,
    /// Importance scores.
    pub importance: Summary,
}

/// An immutable snapshot of the user-visible collection at one pass/cycle
/// boundary. Cheap to share (`Arc`), safe to query from any number of
/// threads; every answer derived from one view is internally consistent
/// with exactly that epoch.
#[derive(Debug)]
pub struct CollectionView {
    epoch: u64,
    day: f64,
    fetch_seq: u64,
    passes: u64,
    /// Ascending by `PageId` — the dense-arena iteration order, which is
    /// what makes lookups a binary search and fleet merges a k-way merge
    /// of sorted runs.
    pages: Vec<ViewPage>,
    metrics: CrawlMetrics,
    pagerank: OnceLock<PageRankScores>,
    top_rate: OnceLock<Vec<(PageId, f64)>>,
    rollups: OnceLock<Vec<SiteRollup>>,
}

impl CollectionView {
    /// The epoch-0 empty view: what readers see between `.serve()` and
    /// the first pass boundary.
    pub fn empty() -> CollectionView {
        CollectionView::from_parts(0, 0.0, 0, 0, Vec::new(), CrawlMetrics::default())
    }

    /// Build a view from raw parts. `pages` must be sorted ascending by
    /// `PageId` (debug-asserted) — both construction paths (arena
    /// iteration, sorted k-way fleet merge) produce that order naturally.
    pub fn from_parts(
        epoch: u64,
        day: f64,
        fetch_seq: u64,
        passes: u64,
        pages: Vec<ViewPage>,
        metrics: CrawlMetrics,
    ) -> CollectionView {
        debug_assert!(
            pages.windows(2).all(|w| w[0].page < w[1].page),
            "view pages must be strictly ascending by PageId"
        );
        CollectionView {
            epoch,
            day,
            fetch_seq,
            passes,
            pages,
            metrics,
            pagerank: OnceLock::new(),
            top_rate: OnceLock::new(),
            rollups: OnceLock::new(),
        }
    }

    /// Build a view from an engine's pass boundary. One pass over the
    /// dense arena; nothing derived is computed here.
    pub fn from_boundary(epoch: u64, boundary: &ViewBoundary<'_>) -> CollectionView {
        let pages = match boundary.pages {
            BoundaryPages::Stored { collection, update } => collection
                .iter()
                .map(|(page, stored)| ViewPage {
                    page,
                    site: Some(stored.url.site),
                    checksum: stored.checksum,
                    last_crawl: stored.last_crawl,
                    crawl_count: stored.crawl_count,
                    links: stored.links.clone(),
                    change_rate: update.estimated_rate(stored).0,
                    importance: stored.importance,
                })
                .collect(),
            BoundaryPages::Periodic(arena) => arena
                .iter()
                .map(|(page, snap)| ViewPage {
                    page,
                    site: None,
                    checksum: snap.checksum,
                    last_crawl: snap.crawl_time,
                    crawl_count: 1,
                    links: Vec::new(),
                    change_rate: 0.0,
                    importance: 0.0,
                })
                .collect(),
        };
        CollectionView::from_parts(
            epoch,
            boundary.t,
            boundary.fetch_seq,
            boundary.passes,
            pages,
            boundary.metrics.clone(),
        )
    }

    /// The view's epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Simulated day of the publishing boundary.
    pub fn day(&self) -> f64 {
        self.day
    }

    /// Epoch metadata.
    pub fn info(&self) -> EpochInfo {
        EpochInfo {
            epoch: self.epoch,
            day: self.day,
            fetch_seq: self.fetch_seq,
            passes: self.passes,
            pages: self.pages.len(),
        }
    }

    /// How far the live clock has moved past this view (days, never
    /// negative).
    pub fn staleness(&self, live_day: f64) -> f64 {
        (live_day - self.day).max(0.0)
    }

    /// Number of pages in the view.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when the view holds no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// All pages, ascending by `PageId`.
    pub fn pages(&self) -> &[ViewPage] {
        &self.pages
    }

    /// The crawl metrics as of the publishing boundary.
    pub fn metrics(&self) -> &CrawlMetrics {
        &self.metrics
    }

    /// Look a page up by id (binary search over the sorted arena order).
    pub fn get(&self, page: PageId) -> Option<&ViewPage> {
        self.pages
            .binary_search_by_key(&page, |p| p.page)
            .ok()
            .map(|i| &self.pages[i])
    }

    /// Look a page up by URL. For stored-collection views the URL's site
    /// must match; periodic views record no site, so only the page id is
    /// checked.
    pub fn lookup_url(&self, url: Url) -> Option<&ViewPage> {
        self.get(url.page)
            .filter(|p| p.site.is_none() || p.site == Some(url.site))
    }

    /// Overall freshness/age statistics from the boundary's metrics.
    pub fn freshness(&self) -> FreshnessStats {
        let times = self.metrics.freshness.times();
        let values = self.metrics.freshness.values();
        FreshnessStats {
            avg_freshness: self.metrics.freshness.time_average(),
            avg_age: self.metrics.age.time_average(),
            latest: times
                .last()
                .copied()
                .zip(values.last().copied()),
            fetches: self.metrics.fetches,
            failed_fetches: self.metrics.failed_fetches,
        }
    }

    /// Mean copy age of the view's pages relative to the view's day, as a
    /// Welford summary over `day - last_crawl`.
    pub fn copy_age(&self) -> Summary {
        let mut age = Summary::default();
        for p in &self.pages {
            age.record((self.day - p.last_crawl).max(0.0));
        }
        age
    }

    /// Per-site rollups, ascending by `SiteId`. Pages without site
    /// attribution (periodic views) are skipped. Memoized per view.
    pub fn site_rollups(&self) -> &[SiteRollup] {
        self.rollups.get_or_init(|| {
            use std::collections::BTreeMap;
            let mut by_site: BTreeMap<SiteId, SiteRollup> = BTreeMap::new();
            for p in &self.pages {
                let Some(site) = p.site else { continue };
                let entry = by_site.entry(site).or_insert_with(|| SiteRollup {
                    site,
                    pages: 0,
                    copy_age: Summary::default(),
                    change_rate: Summary::default(),
                    importance: Summary::default(),
                });
                entry.pages += 1;
                entry.copy_age.record((self.day - p.last_crawl).max(0.0));
                entry.change_rate.record(p.change_rate);
                entry.importance.record(p.importance);
            }
            by_site.into_values().collect()
        })
    }

    /// PageRank over the view's own link graph (paper form, §2.2),
    /// restricted to links whose both endpoints are in the view. Memoized
    /// per view; empty for periodic views (no link structure). The solve
    /// is infallible here: the paper config converges on every graph this
    /// construction can produce (dangling mass is redistributed), and a
    /// non-view is better than a panic on the read path — an iteration
    /// cap blowout yields the empty scores.
    fn pagerank(&self) -> &PageRankScores {
        self.pagerank.get_or_init(|| {
            let mut graph = PageGraph::new();
            for p in &self.pages {
                let Some(site) = p.site else { continue };
                graph.add_page(p.page, site);
            }
            for p in &self.pages {
                if p.site.is_none() {
                    continue;
                }
                for link in &p.links {
                    if graph.contains(link.page) {
                        graph.add_link(p.page, link.page);
                    }
                }
            }
            pagerank(&graph, &PageRankConfig::paper_1999()).unwrap_or_default()
        })
    }

    /// The `k` highest-PageRank pages of the view, descending score, ties
    /// broken by ascending `PageId` (`PageRankScores::top_k` — the
    /// ordering is pinned, so served top-k lists are byte-identical
    /// across runs).
    pub fn top_k_pagerank(&self, k: usize) -> Vec<(PageId, f64)> {
        self.pagerank().top_k(k)
    }

    /// The `k` highest estimated-change-rate pages, descending rate, ties
    /// broken by ascending `PageId`. Memoized per view.
    pub fn top_k_change_rate(&self, k: usize) -> Vec<(PageId, f64)> {
        let ranked = self.top_rate.get_or_init(|| {
            let mut v: Vec<(PageId, f64)> =
                self.pages.iter().map(|p| (p.page, p.change_rate)).collect();
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
            v
        });
        ranked.iter().take(k).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(id: u64, site: u32, rate: f64, links: &[u64]) -> ViewPage {
        ViewPage {
            page: PageId(id),
            site: Some(SiteId(site)),
            checksum: Checksum(id),
            last_crawl: 1.0,
            crawl_count: 2,
            links: links.iter().map(|&l| Url::new(SiteId(site), PageId(l))).collect(),
            change_rate: rate,
            importance: 1.0,
        }
    }

    fn view(pages: Vec<ViewPage>) -> CollectionView {
        CollectionView::from_parts(3, 5.0, 40, 2, pages, CrawlMetrics::default())
    }

    #[test]
    fn empty_view_answers_sanely() {
        let v = CollectionView::empty();
        assert_eq!(v.info(), EpochInfo { epoch: 0, day: 0.0, fetch_seq: 0, passes: 0, pages: 0 });
        assert!(v.is_empty());
        assert!(v.get(PageId(1)).is_none());
        assert!(v.top_k_pagerank(5).is_empty());
        assert!(v.top_k_change_rate(5).is_empty());
        assert!(v.site_rollups().is_empty());
        assert_eq!(v.staleness(2.5), 2.5);
        assert_eq!(v.freshness().fetches, 0);
    }

    #[test]
    fn lookup_by_id_and_url() {
        let v = view(vec![page(1, 0, 0.1, &[]), page(4, 1, 0.2, &[])]);
        assert_eq!(v.get(PageId(4)).unwrap().site, Some(SiteId(1)));
        assert!(v.get(PageId(2)).is_none());
        assert!(v.lookup_url(Url::new(SiteId(1), PageId(4))).is_some());
        // Wrong site: the URL does not address this page.
        assert!(v.lookup_url(Url::new(SiteId(0), PageId(4))).is_none());
    }

    #[test]
    fn change_rate_top_k_is_ordered_and_tie_broken() {
        let v = view(vec![
            page(1, 0, 0.5, &[]),
            page(2, 0, 0.9, &[]),
            page(3, 0, 0.5, &[]),
            page(9, 0, 0.1, &[]),
        ]);
        let top = v.top_k_change_rate(3);
        assert_eq!(
            top.iter().map(|&(p, _)| p.0).collect::<Vec<_>>(),
            [2, 1, 3],
            "descending rate, ties by ascending id"
        );
    }

    #[test]
    fn pagerank_top_k_favors_the_hub() {
        // 1..=4 all link to 5; 5 links back to 1.
        let v = view(vec![
            page(1, 0, 0.0, &[5]),
            page(2, 0, 0.0, &[5]),
            page(3, 0, 0.0, &[5]),
            page(4, 0, 0.0, &[5]),
            page(5, 0, 0.0, &[1]),
        ]);
        let top = v.top_k_pagerank(2);
        assert_eq!(top[0].0, PageId(5), "hub ranks first");
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn rollups_group_by_site_in_order() {
        let v = view(vec![page(1, 2, 0.1, &[]), page(2, 0, 0.3, &[]), page(3, 2, 0.2, &[])]);
        let rollups = v.site_rollups();
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].site, SiteId(0));
        assert_eq!(rollups[0].pages, 1);
        assert_eq!(rollups[1].site, SiteId(2));
        assert_eq!(rollups[1].pages, 2);
        assert!((rollups[1].change_rate.mean() - 0.15).abs() < 1e-12);
        // Copy age is measured against the view's day (5.0 - 1.0).
        assert!((rollups[1].copy_age.mean() - 4.0).abs() < 1e-12);
    }
}
