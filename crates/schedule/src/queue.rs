//! The time-ordered revisit queue behind `CollUrls`.
//!
//! §5.3: *"CollUrls is implemented as a priority-queue, where the URLs to
//! be crawled early are placed in the front … The position of the crawled
//! URL within CollUrls is determined by the page's estimated change
//! frequency."* This module provides that queue: a binary heap keyed by
//! next-visit time with deterministic tie-breaking on the URL, plus an
//! immediate-priority lane for the RankingModule's "crawl this new page
//! now" insertions.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use webevo_types::Url;

/// One scheduled visit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledVisit {
    /// When the visit is due (days).
    pub due: f64,
    /// The page to visit.
    pub url: Url,
}

/// Internal heap entry; reversed ordering turns `BinaryHeap` (a max-heap)
/// into a min-heap on (due, url).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Entry(ScheduledVisit);

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN due-times are rejected at insert, so partial_cmp is total.
        other
            .0
            .due
            .partial_cmp(&self.0.due)
            .expect("due times are never NaN")
            .then_with(|| {
                (other.0.url.site, other.0.url.page).cmp(&(self.0.url.site, self.0.url.page))
            })
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of scheduled visits.
#[derive(Debug, Default)]
pub struct RevisitQueue {
    heap: BinaryHeap<Entry>,
}

impl RevisitQueue {
    /// An empty queue.
    pub fn new() -> RevisitQueue {
        RevisitQueue::default()
    }

    /// Number of queued visits.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule a visit. NaN due-times are rejected.
    pub fn push(&mut self, url: Url, due: f64) {
        assert!(!due.is_nan(), "due time must not be NaN");
        self.heap.push(Entry(ScheduledVisit { due, url }));
    }

    /// Schedule at the immediate front (§5.3: a newly admitted page "is
    /// placed on the top of CollUrls, so that the UpdateModule can crawl
    /// the page immediately"). Implemented as due-time −∞.
    pub fn push_front(&mut self, url: Url) {
        self.heap
            .push(Entry(ScheduledVisit { due: f64::NEG_INFINITY, url }));
    }

    /// The earliest due visit without removing it.
    pub fn peek(&self) -> Option<ScheduledVisit> {
        self.heap.peek().map(|e| e.0)
    }

    /// Pop the earliest due visit.
    pub fn pop(&mut self) -> Option<ScheduledVisit> {
        self.heap.pop().map(|e| e.0)
    }

    /// Pop the earliest visit only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: f64) -> Option<ScheduledVisit> {
        match self.peek() {
            Some(v) if v.due <= now => self.pop(),
            _ => None,
        }
    }

    /// Remove every entry for `url` (used when the RankingModule discards a
    /// page from the collection). O(n); discards are rare relative to
    /// pops, matching the paper's split of duties.
    pub fn remove(&mut self, url: Url) -> usize {
        let before = self.heap.len();
        let entries: Vec<Entry> = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries.into_iter().filter(|e| e.0.url != url).collect();
        before - self.heap.len()
    }

    /// Drain everything, earliest first.
    pub fn drain_sorted(&mut self) -> Vec<ScheduledVisit> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }

    /// Every scheduled visit, earliest first, without disturbing the
    /// queue — the shape a checkpoint snapshot persists. O(n log n).
    pub fn snapshot_entries(&self) -> Vec<ScheduledVisit> {
        let mut entries: Vec<ScheduledVisit> = self.heap.iter().map(|e| e.0).collect();
        entries.sort_by(|a, b| {
            a.due
                .partial_cmp(&b.due)
                .expect("due times are never NaN")
                .then_with(|| (a.url.site, a.url.page).cmp(&(b.url.site, b.url.page)))
        });
        entries
    }

    /// Rebuild a queue from snapshot entries. Pop order depends only on
    /// the entry *set* (the ordering on `(due, url)` is total), so a queue
    /// restored from [`RevisitQueue::snapshot_entries`] replays the exact
    /// visit sequence of the original.
    pub fn from_entries(entries: Vec<ScheduledVisit>) -> RevisitQueue {
        RevisitQueue {
            heap: entries.into_iter().map(Entry).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_types::{PageId, SiteId};

    fn url(i: u64) -> Url {
        Url::new(SiteId((i % 7) as u32), PageId(i))
    }

    #[test]
    fn pops_in_due_order() {
        let mut q = RevisitQueue::new();
        q.push(url(1), 5.0);
        q.push(url(2), 1.0);
        q.push(url(3), 3.0);
        let order: Vec<f64> = q.drain_sorted().iter().map(|v| v.due).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut q = RevisitQueue::new();
        q.push(url(9), 1.0);
        q.push(url(2), 1.0);
        q.push(url(5), 1.0);
        let pages: Vec<u64> = q.drain_sorted().iter().map(|v| v.url.page.0).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        // All same due; must come out in a deterministic (site,page) order.
        let mut q2 = RevisitQueue::new();
        q2.push(url(5), 1.0);
        q2.push(url(9), 1.0);
        q2.push(url(2), 1.0);
        let pages2: Vec<u64> = q2.drain_sorted().iter().map(|v| v.url.page.0).collect();
        assert_eq!(pages, pages2, "insertion order must not matter");
    }

    #[test]
    fn push_front_preempts() {
        let mut q = RevisitQueue::new();
        q.push(url(1), 0.0);
        q.push_front(url(2));
        assert_eq!(q.pop().unwrap().url, url(2));
    }

    #[test]
    fn pop_due_respects_clock() {
        let mut q = RevisitQueue::new();
        q.push(url(1), 10.0);
        assert_eq!(q.pop_due(5.0), None);
        assert!(q.pop_due(10.0).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn remove_deletes_all_entries() {
        let mut q = RevisitQueue::new();
        q.push(url(1), 1.0);
        q.push(url(1), 2.0);
        q.push(url(2), 3.0);
        assert_eq!(q.remove(url(1)), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().url, url(2));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_due() {
        let mut q = RevisitQueue::new();
        q.push(url(1), f64::NAN);
    }

    #[test]
    fn snapshot_roundtrip_preserves_pop_order() {
        let mut q = RevisitQueue::new();
        q.push(url(3), 5.0);
        q.push(url(1), 2.0);
        q.push_front(url(9)); // −∞ due must survive the round trip
        q.push(url(4), 2.0);
        let entries = q.snapshot_entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].due, f64::NEG_INFINITY);
        let mut restored = RevisitQueue::from_entries(entries);
        let original = q.drain_sorted();
        let replayed = restored.drain_sorted();
        assert_eq!(original, replayed, "restored queue must pop identically");
    }
}
