//! Allocation baselines and the shared evaluation metric.

use serde::{Deserialize, Serialize};
use webevo_freshness::freshness_periodic;
use webevo_types::{ChangeRate, Error, Result};

/// Which revisit policy to use (§4.3's design axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RevisitPolicy {
    /// Same frequency for every page (the "fixed frequency" choice).
    Uniform,
    /// Frequency proportional to the page's change rate — the intuition the
    /// paper's two-page example refutes.
    Proportional,
    /// The freshness-optimal allocation of \[CGM99b\] (Figure 9).
    Optimal,
}

/// A per-page revisit-frequency assignment (visits per day), aligned with
/// the rate slice it was computed from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Visits per day per page.
    pub frequencies: Vec<f64>,
    /// The policy that produced it.
    pub policy: RevisitPolicy,
}

impl Allocation {
    /// Total visits per day consumed.
    pub fn total_budget(&self) -> f64 {
        self.frequencies.iter().sum()
    }

    /// Revisit interval per page in days (`∞` where frequency is 0).
    pub fn intervals(&self) -> Vec<f64> {
        self.frequencies
            .iter()
            .map(|&f| if f > 0.0 { 1.0 / f } else { f64::INFINITY })
            .collect()
    }
}

fn validate(rates: &[ChangeRate], budget_per_day: f64) -> Result<()> {
    if rates.is_empty() {
        return Err(Error::invalid("allocation needs at least one page"));
    }
    if budget_per_day <= 0.0 || !budget_per_day.is_finite() {
        return Err(Error::invalid("budget must be positive and finite"));
    }
    if rates.iter().any(|r| !r.is_valid()) {
        return Err(Error::invalid("change rates must be finite and non-negative"));
    }
    Ok(())
}

/// Uniform allocation: every page visited at `budget / n` per day.
pub fn uniform_allocation(rates: &[ChangeRate], budget_per_day: f64) -> Result<Allocation> {
    validate(rates, budget_per_day)?;
    let f = budget_per_day / rates.len() as f64;
    Ok(Allocation { frequencies: vec![f; rates.len()], policy: RevisitPolicy::Uniform })
}

/// Proportional allocation: `fᵢ ∝ λᵢ`, with the degenerate all-static
/// collection falling back to uniform (there is nothing to be proportional
/// to).
pub fn proportional_allocation(
    rates: &[ChangeRate],
    budget_per_day: f64,
) -> Result<Allocation> {
    validate(rates, budget_per_day)?;
    let total_rate: f64 = rates.iter().map(|r| r.per_day()).sum();
    if total_rate <= 0.0 {
        let mut a = uniform_allocation(rates, budget_per_day)?;
        a.policy = RevisitPolicy::Proportional;
        return Ok(a);
    }
    let frequencies = rates
        .iter()
        .map(|r| budget_per_day * r.per_day() / total_rate)
        .collect();
    Ok(Allocation { frequencies, policy: RevisitPolicy::Proportional })
}

/// Expected collection freshness of an allocation: the mean over pages of
/// the periodic-sync freshness `F(λᵢ, Iᵢ)`, with the conventions
/// `F = 1` for static pages and `F = 0` for changing pages never visited.
pub fn evaluate_allocation(rates: &[ChangeRate], allocation: &Allocation) -> f64 {
    assert_eq!(
        rates.len(),
        allocation.frequencies.len(),
        "allocation must align with rates"
    );
    let n = rates.len() as f64;
    rates
        .iter()
        .zip(allocation.frequencies.iter())
        .map(|(r, &f)| {
            if r.per_day() == 0.0 {
                1.0
            } else if f <= 0.0 {
                0.0
            } else {
                freshness_periodic(r.per_day(), 1.0 / f)
            }
        })
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(v: &[f64]) -> Vec<ChangeRate> {
        v.iter().map(|&x| ChangeRate(x)).collect()
    }

    #[test]
    fn uniform_splits_evenly() {
        let a = uniform_allocation(&rates(&[0.1, 0.2, 0.3]), 3.0).unwrap();
        assert_eq!(a.frequencies, vec![1.0, 1.0, 1.0]);
        assert!((a.total_budget() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_tracks_rates() {
        let a = proportional_allocation(&rates(&[0.1, 0.3]), 4.0).unwrap();
        assert!((a.frequencies[0] - 1.0).abs() < 1e-12);
        assert!((a.frequencies[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_all_static_falls_back_to_uniform() {
        let a = proportional_allocation(&rates(&[0.0, 0.0]), 2.0).unwrap();
        assert_eq!(a.frequencies, vec![1.0, 1.0]);
    }

    #[test]
    fn papers_two_page_example() {
        // §4.3: p1 changes daily, p2 changes every second; one visit/day
        // total. Visiting p1 (uniform would split, but compare the two pure
        // strategies): all-budget-on-p1 beats all-budget-on-p2.
        let rs = rates(&[1.0, 86_400.0]);
        let visit_p1 = Allocation {
            frequencies: vec![1.0, 0.0],
            policy: RevisitPolicy::Optimal,
        };
        let visit_p2 = Allocation {
            frequencies: vec![0.0, 1.0],
            policy: RevisitPolicy::Optimal,
        };
        let f1 = evaluate_allocation(&rs, &visit_p1);
        let f2 = evaluate_allocation(&rs, &visit_p2);
        assert!(f1 > f2, "visiting the slower page wins: {f1} vs {f2}");
        // The paper's numbers: freshness ≈ 0.5·0.632 ≈ 0.32 vs ≈ 0.
        assert!((f1 - 0.316).abs() < 0.01);
        assert!(f2 < 1e-4);
    }

    #[test]
    fn evaluation_conventions() {
        let rs = rates(&[0.0, 0.5]);
        let a = Allocation { frequencies: vec![0.0, 0.0], policy: RevisitPolicy::Uniform };
        // Static page counts as fresh, unvisited changing page as stale.
        assert!((evaluate_allocation(&rs, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intervals_inverse_of_frequencies() {
        let a = Allocation { frequencies: vec![2.0, 0.0], policy: RevisitPolicy::Uniform };
        let iv = a.intervals();
        assert_eq!(iv[0], 0.5);
        assert!(iv[1].is_infinite());
    }

    #[test]
    fn validation_errors() {
        assert!(uniform_allocation(&[], 1.0).is_err());
        assert!(uniform_allocation(&rates(&[0.1]), 0.0).is_err());
        assert!(uniform_allocation(&rates(&[0.1]), f64::INFINITY).is_err());
        assert!(proportional_allocation(&rates(&[-0.1]), 1.0).is_err());
    }
}
