//! The freshness-optimal revisit allocation of \[CGM99b\] — Figure 9.
//!
//! Problem: maximize `(1/N) Σᵢ F(λᵢ, fᵢ)` subject to `Σᵢ fᵢ = B`,
//! `fᵢ ≥ 0`, where `F(λ, f) = (f/λ)(1 − e^{−λ/f})` is the time-averaged
//! freshness of a page with rate `λ` visited `f` times per day (uniformly
//! spaced).
//!
//! The objective is concave in each `fᵢ` (marginal freshness
//! `∂F/∂f = (1/λ)[1 − e^{−x}(1 + x)]` with `x = λ/f` is positive and
//! decreasing in `f`), so Lagrange/KKT water-filling is globally optimal:
//! there is a multiplier `μ ≥ 0` with
//!
//! * `fᵢ = 0` whenever the marginal gain at zero, `1/λᵢ`, is ≤ `μ`
//!   (pages that change *too fast* are abandoned first — the right-hand
//!   fall of Figure 9), and
//! * otherwise `fᵢ` solves `∂F/∂fᵢ = μ`.
//!
//! Both the inner solve (monotone in `f`) and the outer budget matching
//! (total allocation monotone decreasing in `μ`) are bisections, so the
//! solver is deterministic and robust.

use crate::policy::{Allocation, RevisitPolicy};
use serde::{Deserialize, Serialize};
use webevo_types::{ChangeRate, Error, Result};

/// Marginal freshness gain `∂F/∂f` at frequency `f` for rate `lambda`.
///
/// `= (1/λ)[1 − e^{−λ/f}(1 + λ/f)]`; at `f → 0⁺` this tends to `1/λ`.
///
/// The production solver works in the substituted variable `x = λ/f` (see
/// [`invert_gain`]); this form survives as the test oracle pinning the
/// KKT conditions.
#[cfg(test)]
fn marginal_gain(lambda: f64, f: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    if f <= 0.0 {
        return 1.0 / lambda;
    }
    let x = lambda / f;
    if x > 700.0 {
        // e^{-x} underflows; the gain has saturated at 1/λ.
        return 1.0 / lambda;
    }
    (1.0 - (-x).exp() * (1.0 + x)) / lambda
}

/// Invert `g(x) = 1 − e^{−x}(1+x) = y` for `x > 0`, given `y ∈ (0, 1)`.
///
/// In the substitution `x = λ/f` the inner KKT equation
/// `marginal_gain(λ, f) = μ` collapses to `g(x) = μλ`, one transcendental
/// equation in one variable. `g` is strictly increasing
/// (`g′(x) = x·e^{−x} > 0`), so a bracket-safeguarded Newton iteration from
/// an asymptotic-aware initial guess converges in a handful of steps —
/// this sits at the bottom of the allocation solver's hot loop, where the
/// former ~50-halving bisection dominated whole-crawl wall time.
///
/// `guess` warm-starts the iteration (pass `NaN` for a cold start).
fn invert_gain(y: f64, guess: f64) -> f64 {
    debug_assert!(y > 0.0 && y < 1.0);
    let mut lo = 0.0_f64;
    let mut hi = f64::INFINITY;
    let mut x = if guess.is_finite() && guess > 0.0 {
        guess
    } else if y < 0.5 {
        // Small-x expansion: g(x) = x²/2 − x³/3 + …
        (2.0 * y).sqrt()
    } else {
        // Large x: x − ln(1+x) = −ln(1−y) =: L, so x ≈ L + ln(1+L).
        let l = -(1.0 - y).ln();
        l + l.ln_1p()
    };
    for _ in 0..64 {
        let e = (-x).exp();
        let g = 1.0 - e * (1.0 + x);
        if g > y {
            hi = x;
        } else {
            lo = x;
        }
        let newton = x - (g - y) / (x * e);
        let next = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else if hi.is_finite() {
            0.5 * (lo + hi)
        } else {
            2.0 * x.max(1.0)
        };
        if (next - x).abs() <= 1e-15 * next {
            return next;
        }
        x = next;
    }
    x
}

/// Solve `marginal_gain(lambda, f) = mu` for `f`; requires
/// `mu < 1/lambda` (otherwise the optimum is `f = 0`).
///
/// Test-only oracle: the original doubling-bracket + bisection solve the
/// Newton path in [`invert_gain`] is checked against.
#[cfg(test)]
fn solve_frequency(lambda: f64, mu: f64) -> f64 {
    debug_assert!(mu > 0.0 && mu < 1.0 / lambda);
    // marginal_gain decreases in f; bracket an interval containing the root.
    let mut lo = 0.0;
    let mut hi = lambda.max(1.0);
    while marginal_gain(lambda, hi) > mu {
        hi *= 2.0;
        if hi > 1e18 {
            break; // numerically flat; accept hi
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if marginal_gain(lambda, mid) > mu {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Result of the optimal allocation solve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptimalSolution {
    /// The per-page frequencies.
    pub allocation: Allocation,
    /// The Lagrange multiplier at the optimum (marginal freshness per unit
    /// of crawl budget — the "water level").
    pub multiplier: f64,
    /// Pages allocated zero visits (abandoned as too hot or static).
    pub zero_pages: usize,
}

/// Compute the freshness-optimal allocation for `rates` under a total
/// budget of `budget_per_day` visits/day.
///
/// Static pages (λ = 0) receive zero frequency (their copies are always
/// fresh). If *all* pages are static any allocation is optimal; zero
/// frequencies are returned.
pub fn optimal_allocation(rates: &[ChangeRate], budget_per_day: f64) -> Result<OptimalSolution> {
    if rates.is_empty() {
        return Err(Error::invalid("allocation needs at least one page"));
    }
    if budget_per_day <= 0.0 || !budget_per_day.is_finite() {
        return Err(Error::invalid("budget must be positive and finite"));
    }
    if rates.iter().any(|r| !r.is_valid()) {
        return Err(Error::invalid("change rates must be finite and non-negative"));
    }
    let changing: Vec<(usize, f64)> = rates
        .iter()
        .enumerate()
        .filter(|(_, r)| r.per_day() > 0.0)
        .map(|(i, r)| (i, r.per_day()))
        .collect();
    let mut frequencies = vec![0.0; rates.len()];
    if changing.is_empty() {
        return Ok(OptimalSolution {
            allocation: Allocation { frequencies, policy: RevisitPolicy::Optimal },
            multiplier: 0.0,
            zero_pages: rates.len(),
        });
    }

    // Pages with identical λ provably share the same optimal frequency, so
    // solve once per distinct rate (this also makes "equal rates ⇒ equal
    // frequencies" exact rather than tolerance-dependent) and weight by
    // multiplicity.
    let mut distinct: Vec<f64> = changing.iter().map(|&(_, l)| l).collect();
    distinct.sort_by(f64::total_cmp);
    distinct.dedup();
    let mut counts = vec![0.0_f64; distinct.len()];
    for &(_, l) in &changing {
        counts[distinct.partition_point(|&d| d < l)] += 1.0;
    }

    // Outer root-find on mu: total allocated budget is strictly decreasing
    // in mu, and its derivative is available in closed form from the inner
    // solution (df/dμ = −λ²(1+x) / (x³(1−μλ))), so a bracket-safeguarded
    // Newton replaces the former fixed 50-step bisection. Inner solves
    // warm-start from the previous outer iterate, so after the first pass
    // each distinct rate costs only a step or two of `invert_gain`.
    let mu_max = 1.0 / distinct[0]; // the slowest page has the largest gain-at-zero
    let mut xs = vec![f64::NAN; distinct.len()];
    let eval = |mu: f64, xs: &mut [f64]| -> (f64, f64) {
        let mut total = 0.0;
        let mut dtotal = 0.0;
        for ((k, &l), &c) in distinct.iter().enumerate().zip(&counts) {
            let y = mu * l;
            if y >= 1.0 {
                break; // abandoned — and so is every faster (later) rate
            }
            let x = invert_gain(y, xs[k]);
            xs[k] = x;
            total += c * l / x;
            dtotal -= c * l * l * (1.0 + x) / (x * x * x * (1.0 - y));
        }
        (total, dtotal)
    };
    let mut mu_lo = 0.0; // total → ∞ as mu → 0⁺
    let mut mu_hi = mu_max; // total = 0 at mu_max
    let mut mu = 0.5 * mu_max;
    for _ in 0..100 {
        let (total, dtotal) = eval(mu, &mut xs);
        if (total - budget_per_day).abs() <= 1e-12 * budget_per_day {
            break; // the final rescale absorbs the residual
        }
        if total > budget_per_day {
            mu_lo = mu;
        } else {
            mu_hi = mu;
        }
        if (mu_hi - mu_lo) < 1e-15 * mu_max {
            break;
        }
        let newton = mu - (total - budget_per_day) / dtotal;
        mu = if newton.is_finite() && newton > mu_lo && newton < mu_hi {
            newton
        } else {
            0.5 * (mu_lo + mu_hi)
        };
    }
    let mut freq_of = vec![0.0_f64; distinct.len()];
    for ((k, &l), &x) in distinct.iter().enumerate().zip(&xs) {
        let y = mu * l;
        if y < 1.0 {
            freq_of[k] = l / invert_gain(y, x);
        }
    }
    let mut zero_pages = rates.len() - changing.len();
    for &(i, l) in &changing {
        let f = freq_of[distinct.partition_point(|&d| d < l)];
        if f > 0.0 {
            frequencies[i] = f;
        } else {
            zero_pages += 1;
        }
    }
    // Rescale the residual bisection slack onto the positive entries so the
    // budget is met exactly.
    let total: f64 = frequencies.iter().sum();
    if total > 0.0 {
        let scale = budget_per_day / total;
        for f in &mut frequencies {
            *f *= scale;
        }
    }
    Ok(OptimalSolution {
        allocation: Allocation { frequencies, policy: RevisitPolicy::Optimal },
        multiplier: mu,
        zero_pages,
    })
}

/// Generate Figure 9's curve: optimal revisit frequency as a function of
/// the page's change rate, within a fixed reference collection.
///
/// The collection is a dense grid of rates from `rate_lo` to `rate_hi`
/// (log-spaced, `points` pages) with total budget `budget_per_day`; the
/// returned rows are `(λ, f*)` pairs. The shape — rising to a peak at
/// λ_h, then falling to zero — is scenario-independent (the paper: "the
/// shape of the graph is always the same").
pub fn optimal_frequency_curve(
    rate_lo: f64,
    rate_hi: f64,
    points: usize,
    budget_per_day: f64,
) -> Result<Vec<(f64, f64)>> {
    if !(rate_lo > 0.0 && rate_hi > rate_lo) {
        return Err(Error::invalid("need 0 < rate_lo < rate_hi"));
    }
    if points < 3 {
        return Err(Error::invalid("need at least 3 points"));
    }
    let rates: Vec<ChangeRate> = (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            ChangeRate((rate_lo.ln() + t * (rate_hi.ln() - rate_lo.ln())).exp())
        })
        .collect();
    let solution = optimal_allocation(&rates, budget_per_day)?;
    Ok(rates
        .iter()
        .zip(solution.allocation.frequencies.iter())
        .map(|(r, &f)| (r.per_day(), f))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{evaluate_allocation, proportional_allocation, uniform_allocation};

    fn rates(v: &[f64]) -> Vec<ChangeRate> {
        v.iter().map(|&x| ChangeRate(x)).collect()
    }

    #[test]
    fn budget_is_respected() {
        let rs = rates(&[0.01, 0.1, 0.5, 2.0, 0.0]);
        let sol = optimal_allocation(&rs, 3.0).unwrap();
        assert!((sol.allocation.total_budget() - 3.0).abs() < 1e-9);
        assert_eq!(sol.allocation.frequencies[4], 0.0, "static page gets nothing");
    }

    #[test]
    fn optimal_beats_uniform_and_proportional() {
        // A skewed rate mixture like the measured web: many slow pages, a
        // few very fast ones.
        let mut v = vec![0.005; 60];
        v.extend(vec![0.05; 25]);
        v.extend(vec![1.0; 10]);
        v.extend(vec![5.0; 5]);
        let rs = rates(&v);
        let budget = 10.0;
        let uni = uniform_allocation(&rs, budget).unwrap();
        let prop = proportional_allocation(&rs, budget).unwrap();
        let opt = optimal_allocation(&rs, budget).unwrap();
        let f_uni = evaluate_allocation(&rs, &uni);
        let f_prop = evaluate_allocation(&rs, &prop);
        let f_opt = evaluate_allocation(&rs, &opt.allocation);
        assert!(f_opt >= f_uni - 1e-9, "optimal {f_opt} vs uniform {f_uni}");
        assert!(f_opt >= f_prop - 1e-9, "optimal {f_opt} vs proportional {f_prop}");
        // The paper's 10–23% improvement claim is workload-dependent; on a
        // skewed mixture the gain over proportional should be clearly
        // visible.
        assert!(f_opt > f_prop * 1.05, "gain over proportional: {f_opt} vs {f_prop}");
    }

    #[test]
    fn figure9_shape_rises_then_falls() {
        let curve = optimal_frequency_curve(0.001, 10.0, 120, 30.0).unwrap();
        let freqs: Vec<f64> = curve.iter().map(|&(_, f)| f).collect();
        let peak_idx = freqs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak_idx > 5, "peak should not be at the slow end");
        assert!(peak_idx < freqs.len() - 5, "peak should not be at the fast end");
        // Rising before the peak (sampled).
        assert!(freqs[peak_idx / 2] < freqs[peak_idx]);
        // Falling after the peak, eventually to zero.
        assert!(freqs[freqs.len() - 1] < freqs[peak_idx]);
        assert_eq!(
            freqs[freqs.len() - 1], 0.0,
            "pages changing too fast are abandoned"
        );
    }

    #[test]
    fn equal_rates_get_equal_frequencies() {
        let rs = rates(&[0.2; 8]);
        let sol = optimal_allocation(&rs, 4.0).unwrap();
        for &f in &sol.allocation.frequencies {
            assert!((f - 0.5).abs() < 1e-9, "f={f}");
        }
    }

    #[test]
    fn all_static_collection() {
        let rs = rates(&[0.0, 0.0, 0.0]);
        let sol = optimal_allocation(&rs, 1.0).unwrap();
        assert_eq!(sol.allocation.frequencies, vec![0.0, 0.0, 0.0]);
        assert_eq!(sol.zero_pages, 3);
        assert!((evaluate_allocation(&rs, &sol.allocation) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_gain_properties() {
        // Decreasing in f, limit 1/λ at f→0.
        let l = 0.5;
        assert!((marginal_gain(l, 0.0) - 2.0).abs() < 1e-12);
        let mut prev = f64::INFINITY;
        for &f in &[0.01, 0.1, 1.0, 10.0, 100.0] {
            let g = marginal_gain(l, f);
            assert!(g < prev, "gain must decrease");
            assert!(g > 0.0);
            prev = g;
        }
    }

    #[test]
    fn kkt_conditions_hold() {
        // At the optimum every positive-frequency page has the same
        // marginal gain (the multiplier), and zero pages have gain-at-zero
        // below it.
        let rs = rates(&[0.01, 0.1, 1.0, 20.0]);
        let sol = optimal_allocation(&rs, 1.0).unwrap();
        let mu = sol.multiplier;
        for (r, &f) in rs.iter().zip(sol.allocation.frequencies.iter()) {
            if f > 0.0 {
                let g = marginal_gain(r.per_day(), f);
                assert!(
                    (g - mu).abs() < mu * 0.05,
                    "active page gain {g} should sit near mu {mu}"
                );
            } else if r.per_day() > 0.0 {
                assert!(1.0 / r.per_day() <= mu * 1.05, "abandoned page threshold");
            }
        }
    }

    #[test]
    fn newton_inversion_matches_bisection_oracle() {
        // The production inner solve (Newton on x = λ/f in `invert_gain`)
        // must agree with the original bracketed bisection across the whole
        // operating range, including near both asymptotes of g.
        for &lambda in &[1e-4, 0.01, 0.5, 1.0, 7.3, 100.0] {
            for &frac in &[1e-9, 1e-4, 0.01, 0.3, 0.5, 0.9, 0.999, 0.999_999] {
                let mu = frac / lambda; // μλ = frac ∈ (0, 1)
                let f_oracle = solve_frequency(lambda, mu);
                let f_newton = lambda / invert_gain(frac, f64::NAN);
                assert!(
                    (f_newton - f_oracle).abs() <= 1e-6 * f_oracle,
                    "λ={lambda} μλ={frac}: newton {f_newton} vs oracle {f_oracle}"
                );
                // Warm starts must converge to the same root.
                for &guess in &[f_newton * 0.1, f_newton * 10.0] {
                    let warm = lambda / invert_gain(frac, lambda / guess);
                    assert!(
                        (warm - f_newton).abs() <= 1e-9 * f_newton,
                        "warm start from {guess} drifted: {warm} vs {f_newton}"
                    );
                }
            }
        }
    }

    #[test]
    fn tight_budget_abandons_fastest_pages_first() {
        let rs = rates(&[0.01, 0.1, 50.0]);
        let sol = optimal_allocation(&rs, 0.05).unwrap();
        let f = &sol.allocation.frequencies;
        assert_eq!(f[2], 0.0, "hottest page abandoned under tight budget");
        assert!(f[0] > 0.0 || f[1] > 0.0);
    }

    #[test]
    fn validation_errors() {
        assert!(optimal_allocation(&[], 1.0).is_err());
        assert!(optimal_allocation(&rates(&[0.1]), -1.0).is_err());
        assert!(optimal_frequency_curve(0.0, 1.0, 10, 1.0).is_err());
        assert!(optimal_frequency_curve(0.1, 1.0, 2, 1.0).is_err());
    }
}
