//! Revisit-frequency scheduling (§4 choice 3, Figure 9, \[CGM99b\]).
//!
//! Given estimated change rates for the pages in the collection and a total
//! crawl-rate budget (pages per day), how often should each page be
//! revisited?
//!
//! * **Fixed/uniform** — every page at the same frequency; the natural
//!   batch-crawler policy.
//! * **Proportional** — frequency ∝ change rate; the intuitive policy the
//!   paper debunks with its two-page example (§4.3).
//! * **Optimal** — the freshness-maximizing allocation of \[CGM99b\], a
//!   Lagrange water-filling solve. Reproduces Figure 9's counterintuitive
//!   shape: revisit frequency *rises* with change rate up to a threshold
//!   λ_h, then *falls*, reaching zero for pages that change too fast to be
//!   worth chasing.
//!
//! [`optimal`] implements the solver, [`policy`] the uniform/proportional
//! baselines and the common evaluation code, [`weighted`] the
//! importance-weighted variant §5.3 sketches, and [`queue`] the
//! time-ordered revisit queue that turns frequencies into a crawl order
//! (the heart of `CollUrls`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod optimal;
pub mod policy;
pub mod queue;
pub mod weighted;

pub use optimal::{optimal_allocation, optimal_frequency_curve, OptimalSolution};
pub use policy::{
    evaluate_allocation, proportional_allocation, uniform_allocation, Allocation,
    RevisitPolicy,
};
pub use queue::{RevisitQueue, ScheduledVisit};
pub use weighted::weighted_optimal_allocation;
