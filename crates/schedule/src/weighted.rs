//! Importance-weighted optimal scheduling (§5.3 extension).
//!
//! *"the UpdateModule may need to consult the 'importance' of a page in
//! deciding on revisit frequency. If a certain page is 'highly important'
//! and the page needs to be always up-to-date, the UpdateModule may revisit
//! the page much more often than other pages with similar change
//! frequency."*
//!
//! Formally: maximize `Σᵢ wᵢ F(λᵢ, fᵢ)` under the same budget. The KKT
//! threshold becomes `wᵢ/λᵢ ≤ μ → fᵢ = 0`, and active pages solve
//! `wᵢ·∂F/∂fᵢ = μ` — the same water-filling with the marginal gain scaled
//! by importance.

use crate::policy::{Allocation, RevisitPolicy};
use webevo_types::{ChangeRate, Error, Result};

fn marginal_gain(lambda: f64, f: f64) -> f64 {
    if f <= 0.0 {
        return 1.0 / lambda;
    }
    let x = lambda / f;
    if x > 700.0 {
        return 1.0 / lambda;
    }
    (1.0 - (-x).exp() * (1.0 + x)) / lambda
}

fn solve_frequency(lambda: f64, weight: f64, mu: f64) -> f64 {
    debug_assert!(mu > 0.0 && mu < weight / lambda);
    let mut lo = 0.0;
    let mut hi = lambda.max(1.0);
    while weight * marginal_gain(lambda, hi) > mu {
        hi *= 2.0;
        if hi > 1e18 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if weight * marginal_gain(lambda, mid) > mu {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Weighted-optimal allocation: importance weights scale each page's claim
/// on the crawl budget. `weights` must align with `rates`; weights must be
/// positive (use a tiny weight rather than zero to express "unimportant").
pub fn weighted_optimal_allocation(
    rates: &[ChangeRate],
    weights: &[f64],
    budget_per_day: f64,
) -> Result<Allocation> {
    if rates.is_empty() {
        return Err(Error::invalid("allocation needs at least one page"));
    }
    if rates.len() != weights.len() {
        return Err(Error::invalid("weights must align with rates"));
    }
    if budget_per_day <= 0.0 || !budget_per_day.is_finite() {
        return Err(Error::invalid("budget must be positive and finite"));
    }
    if weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
        return Err(Error::invalid("weights must be positive and finite"));
    }
    if rates.iter().any(|r| !r.is_valid()) {
        return Err(Error::invalid("change rates must be finite and non-negative"));
    }
    let active: Vec<(usize, f64, f64)> = rates
        .iter()
        .zip(weights.iter())
        .enumerate()
        .filter(|(_, (r, _))| r.per_day() > 0.0)
        .map(|(i, (r, &w))| (i, r.per_day(), w))
        .collect();
    let mut frequencies = vec![0.0; rates.len()];
    if active.is_empty() {
        return Ok(Allocation { frequencies, policy: RevisitPolicy::Optimal });
    }
    let mu_max = active
        .iter()
        .map(|&(_, l, w)| w / l)
        .fold(f64::NEG_INFINITY, f64::max);
    let total_at = |mu: f64| -> f64 {
        active
            .iter()
            .map(|&(_, l, w)| if mu >= w / l { 0.0 } else { solve_frequency(l, w, mu) })
            .sum()
    };
    let mut mu_lo = 0.0;
    let mut mu_hi = mu_max;
    let mut mu = 0.0;
    for _ in 0..200 {
        mu = 0.5 * (mu_lo + mu_hi);
        if total_at(mu) > budget_per_day {
            mu_lo = mu;
        } else {
            mu_hi = mu;
        }
        if (mu_hi - mu_lo) < 1e-15 * mu_max {
            break;
        }
    }
    for &(i, l, w) in &active {
        if mu < w / l {
            frequencies[i] = solve_frequency(l, w, mu);
        }
    }
    let total: f64 = frequencies.iter().sum();
    if total > 0.0 {
        let scale = budget_per_day / total;
        for f in &mut frequencies {
            *f *= scale;
        }
    }
    Ok(Allocation { frequencies, policy: RevisitPolicy::Optimal })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_allocation;

    fn rates(v: &[f64]) -> Vec<ChangeRate> {
        v.iter().map(|&x| ChangeRate(x)).collect()
    }

    #[test]
    fn uniform_weights_match_unweighted() {
        let rs = rates(&[0.01, 0.1, 1.0]);
        let w = vec![1.0; 3];
        let weighted = weighted_optimal_allocation(&rs, &w, 2.0).unwrap();
        let unweighted = optimal_allocation(&rs, 2.0).unwrap().allocation;
        for (a, b) in weighted.frequencies.iter().zip(unweighted.frequencies.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn important_page_visited_more() {
        // Same change rate, different importance.
        let rs = rates(&[0.1, 0.1]);
        let a = weighted_optimal_allocation(&rs, &[10.0, 1.0], 1.0).unwrap();
        assert!(
            a.frequencies[0] > a.frequencies[1],
            "important page should be revisited more: {:?}",
            a.frequencies
        );
    }

    #[test]
    fn importance_rescues_hot_page() {
        // A hot page abandoned under equal weights survives with a large
        // enough weight.
        let rs = rates(&[0.05, 20.0]);
        let budget = 0.2;
        let equal = weighted_optimal_allocation(&rs, &[1.0, 1.0], budget).unwrap();
        assert_eq!(equal.frequencies[1], 0.0);
        let boosted = weighted_optimal_allocation(&rs, &[1.0, 10_000.0], budget).unwrap();
        assert!(boosted.frequencies[1] > 0.0);
    }

    #[test]
    fn budget_respected() {
        let rs = rates(&[0.1, 0.5, 2.0]);
        let a = weighted_optimal_allocation(&rs, &[1.0, 2.0, 3.0], 5.0).unwrap();
        assert!((a.total_budget() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        let rs = rates(&[0.1]);
        assert!(weighted_optimal_allocation(&rs, &[1.0, 2.0], 1.0).is_err());
        assert!(weighted_optimal_allocation(&rs, &[0.0], 1.0).is_err());
        assert!(weighted_optimal_allocation(&rs, &[1.0], 0.0).is_err());
        assert!(weighted_optimal_allocation(&[], &[], 1.0).is_err());
    }
}
