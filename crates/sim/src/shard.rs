//! The site-filtered fetcher view a crawl-fleet shard fetches through.
//!
//! A sharded fleet routes every URL to the shard that owns its site (see
//! [`webevo_types::ShardPlan`]). A shard's crawl unit therefore must never
//! fetch a foreign site's pages — those URLs are *routed*: a scoped engine
//! diverts every foreign discovery into its routing outbox (delivered to
//! the owning shard at the fleet's next exchange barrier) and skips
//! foreign seeds and queue entries without ever scheduling a fetch, so no
//! capacity is spent on pages another shard owns.
//!
//! The [`ShardedFetcher`] is the residual backstop beneath that routing
//! layer: should a foreign URL reach the fetcher anyway, it resolves to
//! [`FetchError::NotFound`] without touching the inner fetcher, and
//! [`ShardedFetcher::foreign_rejects`] counts the hit. In a correctly
//! routed fleet the count stays zero — the fleet's per-shard reports
//! surface it precisely so a routing regression shows up as a nonzero
//! reject count instead of silently lost pages.
//!
//! The rejection is a pure function of `(plan, shard, url.site)`, so it
//! needs no replay state: [`Fetcher::export_state`],
//! [`Fetcher::restore_state`], and [`Fetcher::observe_replay`] delegate to
//! the wrapped [`SimFetcher`] for owned URLs and leave it untouched for
//! foreign ones — mirroring the live path, which keeps write-ahead-log
//! recovery bit-identical per shard.

use crate::fetch::{FetchError, FetchOutcome, Fetcher, FetcherState, SimFetcher};
use webevo_types::{ShardId, ShardPlan, Url};

/// A [`SimFetcher`] restricted to the sites one shard owns.
pub struct ShardedFetcher<'a> {
    inner: SimFetcher<'a>,
    plan: ShardPlan,
    shard: ShardId,
    foreign_rejects: u64,
}

impl<'a> ShardedFetcher<'a> {
    /// Restrict `inner` to the sites `plan` assigns to `shard`.
    pub fn new(inner: SimFetcher<'a>, plan: ShardPlan, shard: ShardId) -> ShardedFetcher<'a> {
        assert!(
            shard.0 < plan.shards(),
            "{shard} does not exist in a {}-shard plan",
            plan.shards()
        );
        ShardedFetcher { inner, plan, shard, foreign_rejects: 0 }
    }

    /// The shard this fetcher serves.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The partition plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Fetch attempts rejected because the URL belongs to another shard
    /// (observability only; not part of the durable fetcher state, since
    /// the rejection is recomputed from the plan).
    pub fn foreign_rejects(&self) -> u64 {
        self.foreign_rejects
    }

    /// The wrapped fetcher.
    pub fn inner(&self) -> &SimFetcher<'a> {
        &self.inner
    }

    fn owned(&self, url: Url) -> bool {
        self.plan.owns(self.shard, url.site)
    }
}

impl Fetcher for ShardedFetcher<'_> {
    fn fetch(&mut self, url: Url, t: f64) -> Result<FetchOutcome, FetchError> {
        if !self.owned(url) {
            self.foreign_rejects += 1;
            return Err(FetchError::NotFound);
        }
        self.inner.fetch(url, t)
    }

    fn export_state(&self) -> Option<FetcherState> {
        Fetcher::export_state(&self.inner)
    }

    fn restore_state(&mut self, state: FetcherState) {
        self.inner.restore_state(state);
    }

    fn observe_replay(&mut self, url: Url, t: f64, result: &Result<FetchOutcome, FetchError>) {
        if !self.owned(url) {
            self.foreign_rejects += 1;
            return;
        }
        self.inner.observe_replay(url, t, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniverseConfig;
    use crate::universe::WebUniverse;
    use webevo_types::ShardFn;

    fn universe() -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(9))
    }

    fn plan(u: &WebUniverse, shards: u32) -> ShardPlan {
        ShardPlan::new(ShardFn::Range, shards, u.site_count() as u32)
    }

    #[test]
    fn owned_sites_fetch_foreign_sites_do_not() {
        let u = universe();
        let plan = plan(&u, 2);
        let mut f = ShardedFetcher::new(SimFetcher::new(&u), plan, ShardId(0));
        let mut owned_ok = 0;
        let mut foreign = 0;
        for site in u.sites() {
            let root = u.url_of(site.slots[0][0]);
            match (plan.owns(ShardId(0), site.id), f.fetch(root, 1.0)) {
                (true, Ok(out)) => {
                    owned_ok += 1;
                    assert_eq!(out.checksum, u.checksum_at(root.page, 1.0));
                }
                (false, Err(FetchError::NotFound)) => foreign += 1,
                (owns, other) => panic!("site {} owns={owns}: {other:?}", site.id),
            }
        }
        assert!(owned_ok > 0 && foreign > 0, "both halves exercised");
        assert_eq!(f.foreign_rejects(), foreign);
        // The inner fetcher never saw the foreign attempts.
        assert_eq!(f.inner().stats().attempts(), owned_ok);
    }

    #[test]
    fn shards_cover_the_universe_disjointly() {
        let u = universe();
        let plan = plan(&u, 3);
        for site in u.sites() {
            let root = u.url_of(site.slots[0][0]);
            let successes = (0..3)
                .filter(|&k| {
                    let mut f = ShardedFetcher::new(SimFetcher::new(&u), plan, ShardId(k));
                    f.fetch(root, 0.5).is_ok()
                })
                .count();
            assert_eq!(successes, 1, "site {} fetched by {successes} shards", site.id);
        }
    }

    #[test]
    fn replay_observation_matches_live_fetching_across_the_boundary() {
        // The property shard-level WAL recovery leans on, including
        // foreign rejections interleaved with owned fetches.
        let u = universe();
        let plan = plan(&u, 2);
        let mut live = ShardedFetcher::new(
            SimFetcher::new(&u).with_failure_rate(0.25),
            plan,
            ShardId(1),
        );
        let mut log = Vec::new();
        for (i, site) in u.sites().iter().enumerate() {
            let url = u.url_of(site.slots[0][0]);
            let t = 1.0 + i as f64 * 0.01;
            log.push((url, t, live.fetch(url, t)));
        }
        let mut replayed = ShardedFetcher::new(
            SimFetcher::new(&u).with_failure_rate(0.25),
            plan,
            ShardId(1),
        );
        for (url, t, result) in &log {
            replayed.observe_replay(*url, *t, result);
        }
        assert_eq!(Fetcher::export_state(&live), Fetcher::export_state(&replayed));
        assert_eq!(live.foreign_rejects(), replayed.foreign_rejects());
    }

    #[test]
    fn state_roundtrips_through_the_trait() {
        let u = universe();
        let plan = plan(&u, 2);
        let mut f = ShardedFetcher::new(SimFetcher::new(&u), plan, ShardId(0));
        for site in u.sites() {
            let _ = f.fetch(u.url_of(site.slots[0][0]), 2.0);
        }
        let state = Fetcher::export_state(&f).expect("sim-backed fetcher is stateful");
        let mut restored = ShardedFetcher::new(SimFetcher::new(&u), plan, ShardId(0));
        Fetcher::restore_state(&mut restored, state);
        assert_eq!(Fetcher::export_state(&f), Fetcher::export_state(&restored));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn out_of_range_shard_rejected() {
        let u = universe();
        let _ = ShardedFetcher::new(SimFetcher::new(&u), plan(&u, 2), ShardId(2));
    }
}
