//! The generated web universe: all sites, all page incarnations, ground
//! truth queries, and link structure.

use crate::config::UniverseConfig;
use crate::page::{EventRange, SimPage, SimSite};
use crate::profile::DomainProfile;
use webevo_graph::PageGraph;
use webevo_stats::{event_slice, generate_poisson_into, SimRng};
use webevo_types::{Checksum, Domain, PageId, PageVersion, SiteId, Url};

/// Flat occupancy index: for every `(site, slot)` pair, the birth/death
/// times and ids of its successive incarnations, packed contiguously and
/// birth-ordered.
///
/// [`WebUniverse::occupant`] sits on the fetch hot path (one probe per BFS
/// child of every fetched page); resolving it against these parallel
/// arrays is a binary search that never touches the page table, instead of
/// chasing `PageId → SimPage` per probe.
#[derive(Clone, Debug)]
struct SlotIndex {
    /// `starts[g]..starts[g+1]` is global slot `g`'s range in the arrays
    /// below, with `g = site.index() * pages_per_site + slot`.
    starts: Vec<usize>,
    /// Incarnation birth times, ascending within each slot's range.
    births: Vec<f64>,
    /// Matching death times.
    deaths: Vec<f64>,
    /// Matching page ids.
    pages: Vec<PageId>,
}

impl SlotIndex {
    fn build(sites: &[SimSite], pages: &[SimPage]) -> SlotIndex {
        let total: usize = sites.iter().map(SimSite::slot_count).sum();
        let mut index = SlotIndex {
            starts: Vec::with_capacity(total + 1),
            births: Vec::with_capacity(pages.len()),
            deaths: Vec::with_capacity(pages.len()),
            pages: Vec::with_capacity(pages.len()),
        };
        index.starts.push(0);
        for site in sites {
            for slot in &site.slots {
                for &p in slot {
                    let page = &pages[p.index()];
                    index.births.push(page.birth);
                    index.deaths.push(page.death);
                    index.pages.push(p);
                }
                index.starts.push(index.pages.len());
            }
        }
        index
    }
}

/// The whole simulated web.
///
/// Generation is fully deterministic from `config.seed`; two universes with
/// equal configs are identical. Pages are stored in one table indexed by
/// `PageId`, sites in another indexed by `SiteId`. Change schedules are
/// packed into one shared event arena (each page holds a range into it),
/// so ground-truth queries are binary searches over contiguous memory.
#[derive(Clone, Debug)]
pub struct WebUniverse {
    config: UniverseConfig,
    sites: Vec<SimSite>,
    pages: Vec<SimPage>,
    /// Every page's change events, concatenated in page-id order.
    events: Vec<f64>,
    slot_index: SlotIndex,
}

impl WebUniverse {
    /// Generate a universe from a configuration.
    pub fn generate(config: UniverseConfig) -> WebUniverse {
        config.validate();
        let root = SimRng::seed_from_u64(config.seed);
        let mut pages: Vec<SimPage> = Vec::new();
        let mut events: Vec<f64> = Vec::new();
        let mut sites: Vec<SimSite> = Vec::with_capacity(config.total_sites());

        let mut site_id = 0u32;
        for domain in Domain::ALL {
            let profile = DomainProfile::calibrated(domain);
            for _ in 0..*config.sites_per_domain.get(domain) {
                let site_rng = root.fork(0x5157_0000 + site_id as u64);
                let site = Self::generate_site(
                    SiteId(site_id),
                    domain,
                    &profile,
                    &config,
                    &site_rng,
                    &mut pages,
                    &mut events,
                );
                sites.push(site);
                site_id += 1;
            }
        }
        events.shrink_to_fit();
        let slot_index = SlotIndex::build(&sites, &pages);
        WebUniverse { config, sites, pages, events, slot_index }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_site(
        id: SiteId,
        domain: Domain,
        profile: &DomainProfile,
        config: &UniverseConfig,
        site_rng: &SimRng,
        pages: &mut Vec<SimPage>,
        arena: &mut Vec<f64>,
    ) -> SimSite {
        let horizon = config.horizon_days;
        let mut slots: Vec<Vec<PageId>> = Vec::with_capacity(config.pages_per_site);
        for slot in 0..config.pages_per_site {
            let slot_rng = site_rng.fork(slot as u64);
            let mut occupants = Vec::new();
            // Slot 0 (the site root) is immortal: §2.1 monitors "root pages
            // of the selected sites" throughout.
            let immortal = slot == 0 || !config.churn;
            let mut incarnation = 0u64;
            let mut birth = 0.0f64;
            loop {
                let mut page_rng = slot_rng.fork(incarnation);
                let death = if immortal {
                    f64::INFINITY
                } else {
                    let lifetime = profile.sample_lifetime(&mut page_rng);
                    // Stationarity: the slot's first occupant is already
                    // mid-life at t = 0 (the web existed before the
                    // experiment started), so only its residual remains.
                    if incarnation == 0 {
                        birth + lifetime * page_rng.uniform()
                    } else {
                        birth + lifetime
                    }
                };
                let behavior = profile.sample_behavior(&mut page_rng);
                let rate = behavior.rate;
                let end = death.min(horizon);
                let rel_span = (end - birth).max(0.0);
                let start = arena.len();
                if behavior.ticker {
                    // Deterministic sub-daily changer (the paper's
                    // "changed whenever we visited" pages).
                    let period = crate::profile::TICKER_PERIOD_DAYS;
                    let n = (rel_span / period).ceil() as usize;
                    arena.extend(
                        (1..=n)
                            .map(|k| birth + k as f64 * period)
                            .filter(|&t| t < end),
                    );
                } else {
                    generate_poisson_into(&mut page_rng, rate.per_day(), rel_span, birth, arena);
                }
                let events = EventRange { start, len: arena.len() - start };
                debug_assert!(arena[start..].windows(2).all(|w| w[0] <= w[1]));
                let pid = PageId(pages.len() as u64);
                pages.push(SimPage { id: pid, site: id, slot, birth, death, rate, events });
                occupants.push(pid);
                if immortal || death >= horizon {
                    break;
                }
                birth = death;
                incarnation += 1;
            }
            slots.push(occupants);
        }
        SimSite { id, domain, slots }
    }

    /// The generation configuration.
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total page incarnations ever created.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// A site by id.
    pub fn site(&self, s: SiteId) -> &SimSite {
        &self.sites[s.index()]
    }

    /// All sites.
    pub fn sites(&self) -> &[SimSite] {
        &self.sites
    }

    /// A page by id.
    pub fn page(&self, p: PageId) -> &SimPage {
        &self.pages[p.index()]
    }

    /// All page incarnations.
    pub fn pages(&self) -> &[SimPage] {
        &self.pages
    }

    /// The URL of a page.
    pub fn url_of(&self, p: PageId) -> Url {
        Url::new(self.page(p).site, p)
    }

    /// A page's change schedule: sorted absolute event times within the
    /// shared arena.
    #[inline]
    pub fn events_of(&self, p: PageId) -> &[f64] {
        self.pages[p.index()].events.slice(&self.events)
    }

    /// The whole change-event arena (all pages' schedules concatenated in
    /// page-id order).
    pub fn event_arena(&self) -> &[f64] {
        &self.events
    }

    /// Bytes held by the precomputed ground-truth structures (event arena
    /// plus occupancy index) — the memory-footprint proxy the scale bench
    /// reports.
    pub fn arena_bytes(&self) -> usize {
        let idx = &self.slot_index;
        self.events.len() * std::mem::size_of::<f64>()
            + idx.starts.len() * std::mem::size_of::<usize>()
            + idx.births.len() * std::mem::size_of::<f64>()
            + idx.deaths.len() * std::mem::size_of::<f64>()
            + idx.pages.len() * std::mem::size_of::<PageId>()
    }

    /// The page currently occupying `slot` of `site` at time `t`, if any.
    ///
    /// `out_links` and `window` call this per BFS child on the fetch hot
    /// path, so it must not scan: a slot's incarnations are birth-ordered
    /// and contiguous (each birth equals the previous death, pinned by
    /// `slots_have_contiguous_occupancy`), so the only candidate is the
    /// last incarnation born at or before `t` — found by binary search
    /// over the flat `SlotIndex` (no page-table chasing) and checked for
    /// liveness (`t` past the final death, or before time zero, yields
    /// `None`).
    pub fn occupant(&self, site: SiteId, slot: usize, t: f64) -> Option<PageId> {
        let g = site.index() * self.config.pages_per_site + slot;
        let lo = self.slot_index.starts[g];
        let hi = self.slot_index.starts[g + 1];
        let births = &self.slot_index.births[lo..hi];
        let off = births.partition_point(|&b| b <= t);
        let k = lo + off.checked_sub(1)?;
        (t < self.slot_index.deaths[k]).then(|| self.slot_index.pages[k])
    }

    /// §2.1's page window at time `t`: the alive occupants of the leading
    /// `window_size` BFS slots. (Slots are BFS-ordered by construction, so
    /// this is the breadth-first window the monitor crawls daily.)
    pub fn window(&self, site: SiteId, t: f64) -> Vec<PageId> {
        let s = &self.sites[site.index()];
        let w = self.config.window_size.min(s.slots.len());
        (0..w).filter_map(|k| self.occupant(site, k, t)).collect()
    }

    /// Ground truth: is the page alive at `t`?
    pub fn alive(&self, p: PageId, t: f64) -> bool {
        self.page(p).alive(t)
    }

    /// Ground truth: content version at `t`.
    pub fn version_at(&self, p: PageId, t: f64) -> PageVersion {
        self.page(p).version_at(self.events_of(p), t)
    }

    /// Content checksum at `t` — also what [`crate::SimFetcher`] reports.
    pub fn checksum_at(&self, p: PageId, t: f64) -> Checksum {
        self.page(p).checksum_at(self.events_of(p), t)
    }

    /// Ground truth: did the page change in `[a, b)`?
    pub fn changed_between(&self, p: PageId, a: f64, b: f64) -> bool {
        event_slice::any_in(self.events_of(p), a, b)
    }

    /// Ground truth: the first change strictly after `t`, if any before
    /// the horizon.
    pub fn first_change_after(&self, p: PageId, t: f64) -> Option<f64> {
        event_slice::first_after(self.events_of(p), t)
    }

    /// The last-modified date a well-behaved server would report at `t`
    /// (birth time if the page has not changed yet).
    pub fn last_modified(&self, p: PageId, t: f64) -> f64 {
        self.page(p).last_modified(self.events_of(p), t)
    }

    /// Ground truth: a stored copy crawled at `crawl_time` is fresh at `t`
    /// iff the page is still alive and did not change in between.
    pub fn copy_is_fresh(&self, p: PageId, crawl_time: f64, t: f64) -> bool {
        let page = self.page(p);
        page.alive(t) && !event_slice::any_in(self.events_of(p), crawl_time, t)
    }

    /// Out-links of a page at time `t`, as URLs of currently alive targets.
    ///
    /// Structure: the BFS tree children of the page's slot, plus
    /// `extra_links_per_page` pseudo-random intra-site links that re-roll
    /// with each content version (changed pages change their links), plus
    /// an optional cross-site link to another site's root with popularity
    /// skew (low-numbered sites are linked more — giving site-level
    /// PageRank something to rank).
    pub fn out_links(&self, p: PageId, t: f64) -> Vec<Url> {
        let mut links = Vec::new();
        self.out_links_into(p, t, &mut links);
        links
    }

    /// [`Self::out_links`] into a caller-owned buffer (cleared first) — the
    /// fetch hot path reuses one scratch vector instead of allocating per
    /// fetch.
    pub fn out_links_into(&self, p: PageId, t: f64, links: &mut Vec<Url>) {
        links.clear();
        let page = self.page(p);
        if !page.alive(t) {
            return;
        }
        let site = &self.sites[page.site.index()];
        // BFS tree children.
        let b = self.config.branching;
        let first_child = page.slot * b + 1;
        for c in first_child..(first_child + b).min(site.slots.len()) {
            if let Some(target) = self.occupant(page.site, c, t) {
                links.push(Url::new(page.site, target));
            }
        }
        // Version-dependent pseudo-random extras.
        let version = event_slice::version_at(self.events_of(p), t);
        let mut rng = SimRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(p.0.wrapping_mul(0x94d0_49bb_1331_11eb))
                .wrapping_add(version),
        );
        for _ in 0..self.config.extra_links_per_page {
            let slot = rng.index(site.slots.len());
            if slot != page.slot {
                if let Some(target) = self.occupant(page.site, slot, t) {
                    let url = Url::new(page.site, target);
                    if !links.contains(&url) {
                        links.push(url);
                    }
                }
            }
        }
        // Cross-site link with popularity skew (quadratic toward site 0).
        if rng.bernoulli(self.config.cross_link_probability) {
            let u = rng.uniform();
            let target_site = ((u * u) * self.sites.len() as f64) as usize;
            let target_site = SiteId(target_site.min(self.sites.len() - 1) as u32);
            if target_site != page.site {
                if let Some(target) = self.occupant(target_site, 0, t) {
                    links.push(Url::new(target_site, target));
                }
            }
        }
    }

    /// Build a [`PageGraph`] snapshot of every page alive at `t` (all
    /// slots, not just the window) — the substrate for site selection and
    /// for ground-truth importance.
    pub fn snapshot_graph(&self, t: f64) -> PageGraph {
        let mut g = PageGraph::new();
        for page in &self.pages {
            if page.alive(t) {
                g.add_page(page.id, page.site);
            }
        }
        for page in &self.pages {
            if page.alive(t) {
                for url in self.out_links(page.id, t) {
                    if g.contains(url.page) {
                        g.add_link(page.id, url.page);
                    }
                }
            }
        }
        g
    }

    /// Ground-truth mean change rate over the pages alive at `t` in every
    /// window (used to sanity-check the experiment's estimates).
    pub fn mean_window_rate(&self, t: f64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for site in &self.sites {
            for p in self.window(site.id, t) {
                sum += self.page(p).rate.per_day();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.page_count(), b.page_count());
        for (pa, pb) in a.pages().iter().zip(b.pages().iter()) {
            assert_eq!(pa.birth, pb.birth);
            assert_eq!(pa.death, pb.death);
            assert_eq!(pa.rate, pb.rate);
            assert_eq!(a.events_of(pa.id), b.events_of(pb.id));
        }
    }

    #[test]
    fn site_counts_match_config() {
        let u = small();
        assert_eq!(u.site_count(), 10);
        let com_sites = u.sites().iter().filter(|s| s.domain == Domain::Com).count();
        assert_eq!(com_sites, 5);
    }

    #[test]
    fn slots_have_contiguous_occupancy() {
        let u = small();
        for site in u.sites() {
            for (k, slot) in site.slots.iter().enumerate() {
                assert!(!slot.is_empty());
                let mut prev_death = None;
                for &p in slot {
                    let page = u.page(p);
                    assert_eq!(page.slot, k);
                    assert_eq!(page.site, site.id);
                    if let Some(d) = prev_death {
                        assert_eq!(page.birth, d, "next incarnation starts at death");
                    } else {
                        assert_eq!(page.birth, 0.0, "first occupant born at 0");
                    }
                    prev_death = Some(page.death);
                }
                // Coverage to the horizon.
                assert!(prev_death.unwrap() >= u.config().horizon_days);
            }
        }
    }

    /// The pre-optimization `occupant`: a linear scan for the first alive
    /// incarnation. Kept as the reference the binary search must match.
    fn occupant_by_scan(u: &WebUniverse, site: SiteId, slot: usize, t: f64) -> Option<PageId> {
        u.site(site).slots[slot]
            .iter()
            .copied()
            .find(|&p| u.page(p).alive(t))
    }

    #[test]
    fn occupant_binary_search_matches_linear_scan_exhaustively() {
        let u = small();
        let horizon = u.config().horizon_days;
        for site in u.sites() {
            for slot in 0..site.slot_count() {
                // A dense grid across the horizon (and beyond it, and
                // before time zero)...
                let mut probes: Vec<f64> = (-4..=(horizon as i64 * 2 + 4))
                    .map(|k| k as f64 * 0.5)
                    .collect();
                // ...plus every incarnation boundary exactly, and the
                // floats immediately around it.
                for &p in &site.slots[slot] {
                    let page = u.page(p);
                    for edge in [page.birth, page.death] {
                        if edge.is_finite() {
                            probes.extend([
                                edge,
                                f64::from_bits(edge.to_bits().wrapping_sub(1)),
                                edge + f64::EPSILON.max(edge.abs() * f64::EPSILON),
                            ]);
                        }
                    }
                }
                probes.push(f64::NAN);
                for t in probes {
                    assert_eq!(
                        u.occupant(site.id, slot, t),
                        occupant_by_scan(&u, site.id, slot, t),
                        "divergence at site {} slot {slot} t={t}",
                        site.id
                    );
                }
            }
        }
    }

    #[test]
    fn at_most_one_occupant_per_slot() {
        let u = small();
        for t in [0.0, 30.5, 64.0, 100.0, 129.0] {
            for site in u.sites() {
                for k in 0..site.slot_count() {
                    let alive = site.slots[k]
                        .iter()
                        .filter(|&&p| u.page(p).alive(t))
                        .count();
                    assert!(alive <= 1, "slot {k} has {alive} occupants at {t}");
                }
            }
        }
    }

    #[test]
    fn roots_are_immortal() {
        let u = small();
        for site in u.sites() {
            let root = site.slots[0][0];
            assert!(u.page(root).death.is_infinite());
            assert!(u.alive(root, 0.0) && u.alive(root, 129.0));
        }
    }

    #[test]
    fn window_is_bounded_and_alive() {
        let u = small();
        for t in [0.0, 50.0, 120.0] {
            for site in u.sites() {
                let w = u.window(site.id, t);
                assert!(w.len() <= u.config().window_size);
                for p in w {
                    assert!(u.alive(p, t));
                }
            }
        }
    }

    #[test]
    fn window_changes_over_time_with_churn() {
        let u = small();
        let site = u.sites()[0].id;
        let w0: Vec<PageId> = u.window(site, 0.0);
        let w1: Vec<PageId> = u.window(site, 120.0);
        assert_ne!(w0, w1, "page churn should rotate window membership");
    }

    #[test]
    fn checksum_tracks_changes() {
        let u = small();
        // Find a page with at least one change while alive.
        let page = u
            .pages()
            .iter()
            .find(|p| p.events.len > 0)
            .expect("some page changes");
        let e = u.events_of(page.id)[0];
        assert_ne!(
            u.checksum_at(page.id, e - 1e-9),
            u.checksum_at(page.id, e + 1e-9)
        );
        assert!(u.changed_between(page.id, e - 0.5, e + 0.5));
        assert!(!u.copy_is_fresh(page.id, e - 0.5, e + 0.5));
    }

    #[test]
    fn out_links_point_to_alive_pages() {
        let u = small();
        for t in [0.0, 60.0, 120.0] {
            for site in u.sites() {
                for p in u.window(site.id, t) {
                    for url in u.out_links(p, t) {
                        assert!(u.alive(url.page, t), "link target must be alive");
                        assert_eq!(u.page(url.page).site, url.site);
                    }
                }
            }
        }
    }

    #[test]
    fn dead_pages_have_no_links() {
        let u = small();
        let dead = u
            .pages()
            .iter()
            .find(|p| p.death < 100.0)
            .expect("churn produces dead pages");
        assert!(u.out_links(dead.id, dead.death + 1.0).is_empty());
    }

    #[test]
    fn snapshot_graph_is_consistent() {
        let u = small();
        let g = u.snapshot_graph(10.0);
        g.check_invariants();
        let alive_count = u.pages().iter().filter(|p| p.alive(10.0)).count();
        assert_eq!(g.page_count(), alive_count);
        assert!(g.link_count() > 0);
    }

    #[test]
    fn links_change_when_content_changes() {
        let u = small();
        // A page whose extras re-roll across a change event; tree links stay.
        let page = u
            .pages()
            .iter()
            .find(|p| p.events.len > 0 && p.death.is_infinite() && p.slot < 3)
            .expect("a changing long-lived page near the root");
        let e = u.events_of(page.id)[0];
        let before = u.out_links(page.id, e - 1e-9);
        let after = u.out_links(page.id, e + 1e-9);
        // Not asserting inequality for every page (extras may collide), but
        // the link sets must both be valid and deterministic.
        assert_eq!(before, u.out_links(page.id, e - 1e-9));
        assert_eq!(after, u.out_links(page.id, e + 1e-9));
    }

    #[test]
    fn rates_follow_domain_profiles() {
        let u = WebUniverse::generate(UniverseConfig::medium_scale(7));
        // com windows should change much faster than gov windows on average.
        let mut com_rate = (0.0, 0usize);
        let mut gov_rate = (0.0, 0usize);
        for site in u.sites() {
            for p in u.window(site.id, 0.0) {
                let r = u.page(p).rate.per_day();
                match site.domain {
                    Domain::Com => {
                        com_rate.0 += r;
                        com_rate.1 += 1;
                    }
                    Domain::Gov => {
                        gov_rate.0 += r;
                        gov_rate.1 += 1;
                    }
                    _ => {}
                }
            }
        }
        let com = com_rate.0 / com_rate.1 as f64;
        let gov = gov_rate.0 / gov_rate.1 as f64;
        assert!(com > 4.0 * gov, "com mean rate {com} should dwarf gov {gov}");
    }
}
