//! The crawler-facing fetch interface.
//!
//! Crawlers never touch universe ground truth; they see exactly what a real
//! crawler sees: fetch a URL, get back a checksum, extracted links and an
//! optional last-modified date — or a failure. [`SimFetcher`] implements
//! the trait over a [`WebUniverse`], with the politeness constraints §2.3
//! describes (the paper waited ≥10 s between requests to a site and crawled
//! only at night) and optional transient-failure injection for robustness
//! testing.

use crate::universe::WebUniverse;
use serde::{Deserialize, Serialize};
use webevo_types::binio::{BinDecode, BinEncode, BinError, BinReader};
use webevo_types::{Checksum, SiteId, Url};

/// Why a fetch failed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FetchError {
    /// The URL does not resolve (page deleted, or not yet created).
    NotFound,
    /// The per-site politeness constraint forbids fetching right now;
    /// retry at or after the given time (days).
    RateLimited {
        /// Earliest permissible retry time.
        retry_at: f64,
    },
    /// A transient network/server failure; retrying later may succeed.
    Transient,
}

/// A successful fetch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FetchOutcome {
    /// Digest of the page content (the UpdateModule's change signal).
    pub checksum: Checksum,
    /// URLs extracted from the page (the CrawlModule forwards these to
    /// AllUrls).
    pub links: Vec<Url>,
    /// Server-reported last-modified time (days), when available.
    pub last_modified: Option<f64>,
}

/// Anything a crawler can fetch from.
pub trait Fetcher {
    /// Fetch `url` at simulated time `t`.
    fn fetch(&mut self, url: Url, t: f64) -> Result<FetchOutcome, FetchError>;

    /// Export the fetcher's replay-relevant mutable state for a
    /// checkpoint, if the implementation supports durable crawl state.
    /// The default (`None`) marks a fetcher as stateless for recovery
    /// purposes.
    fn export_state(&self) -> Option<FetcherState> {
        None
    }

    /// Advance internal state exactly as [`Fetcher::fetch`] would have for
    /// an attempt that produced `result`, without performing a fetch.
    /// Write-ahead-log recovery calls this once per logged attempt so the
    /// fetcher's counters and per-site clocks land at the same values an
    /// uninterrupted run would carry.
    fn observe_replay(&mut self, url: Url, t: f64, result: &Result<FetchOutcome, FetchError>) {
        let _ = (url, t, result);
    }

    /// Install replay-relevant state previously captured by
    /// [`Fetcher::export_state`] — the recovery-side counterpart, callable
    /// through a trait object so session-level recovery works with any
    /// fetcher. Stateless fetchers ignore it.
    fn restore_state(&mut self, state: FetcherState) {
        let _ = state;
    }
}

/// The replay-relevant mutable state of a fetcher: everything that can
/// influence a *future* fetch result. Politeness limits and the failure
/// rate are configuration, not state — the owner re-applies them when
/// rebuilding a fetcher.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FetcherState {
    /// Last successful access time per site (politeness pacing), sorted by
    /// site id so snapshots are deterministic.
    pub last_site_access: Vec<(SiteId, f64)>,
    /// Fetch attempts issued so far (drives deterministic failure
    /// injection).
    pub attempt_counter: u64,
    /// Accumulated counters.
    pub stats: FetchStats,
}

impl BinEncode for FetcherState {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.last_site_access.bin_encode(out);
        self.attempt_counter.bin_encode(out);
        self.stats.bin_encode(out);
    }
}

impl BinDecode for FetcherState {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<FetcherState, BinError> {
        Ok(FetcherState {
            last_site_access: Vec::bin_decode(r)?,
            attempt_counter: u64::bin_decode(r)?,
            stats: FetchStats::bin_decode(r)?,
        })
    }
}

/// Politeness constraints, mirroring §2.3.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Politeness {
    /// Minimum delay between requests to one site, in days (the paper's
    /// 10 s ≈ 1.157e-4 days).
    pub min_delay_days: f64,
    /// Crawling allowed only within this window of each day, as day
    /// fractions `[start, end)` — the paper crawled 9PM–6AM PST, i.e.
    /// roughly `(0.875, 1.0)` ∪ `(0.0, 0.25)`; we model a single window
    /// and `None` means "any time".
    pub night_window: Option<(f64, f64)>,
}

impl Politeness {
    /// The paper's setup: ≥10 seconds between requests, nightly crawling.
    /// With these limits a site yields at most ~3,240 pages per night —
    /// the origin of the 3,000-page window (§2.3).
    pub fn paper() -> Politeness {
        Politeness {
            min_delay_days: 10.0 / 86_400.0,
            night_window: Some((0.875, 0.25)), // wraps midnight
        }
    }

    /// No constraints (simulation-speed crawling).
    pub fn unrestricted() -> Politeness {
        Politeness { min_delay_days: 0.0, night_window: None }
    }

    /// Is crawling allowed at day-fraction `frac`?
    pub fn allows_time_of_day(&self, frac: f64) -> bool {
        match self.night_window {
            None => true,
            Some((start, end)) if start <= end => frac >= start && frac < end,
            // Window wrapping midnight, e.g. (0.875, 0.25).
            Some((start, end)) => frac >= start || frac < end,
        }
    }

    /// Maximum pages fetchable from one site per day under these limits.
    pub fn max_pages_per_site_per_day(&self) -> f64 {
        let window_len = match self.night_window {
            None => 1.0,
            Some((s, e)) if s <= e => e - s,
            Some((s, e)) => (1.0 - s) + e,
        };
        if self.min_delay_days <= 0.0 {
            f64::INFINITY
        } else {
            window_len / self.min_delay_days
        }
    }
}

/// Counters a fetcher keeps (useful for the peak-speed arguments of §4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FetchStats {
    /// Successful fetches.
    pub ok: u64,
    /// Pages that were gone / never existed.
    pub not_found: u64,
    /// Politeness rejections.
    pub rate_limited: u64,
    /// Injected transient failures.
    pub transient: u64,
}

impl FetchStats {
    /// Total fetch attempts.
    pub fn attempts(&self) -> u64 {
        self.ok + self.not_found + self.rate_limited + self.transient
    }
}

impl BinEncode for FetchError {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        match self {
            FetchError::NotFound => out.push(0),
            FetchError::RateLimited { retry_at } => {
                out.push(1);
                retry_at.bin_encode(out);
            }
            FetchError::Transient => out.push(2),
        }
    }
}

impl BinDecode for FetchError {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<FetchError, BinError> {
        match r.byte()? {
            0 => Ok(FetchError::NotFound),
            1 => Ok(FetchError::RateLimited { retry_at: f64::bin_decode(r)? }),
            2 => Ok(FetchError::Transient),
            other => Err(BinError::new(format!("invalid FetchError tag {other}"))),
        }
    }
}

impl BinEncode for FetchOutcome {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.checksum.bin_encode(out);
        self.links.bin_encode(out);
        self.last_modified.bin_encode(out);
    }
}

impl BinDecode for FetchOutcome {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<FetchOutcome, BinError> {
        Ok(FetchOutcome {
            checksum: Checksum::bin_decode(r)?,
            links: Vec::bin_decode(r)?,
            last_modified: Option::bin_decode(r)?,
        })
    }
}

impl BinEncode for FetchStats {
    fn bin_encode(&self, out: &mut Vec<u8>) {
        self.ok.bin_encode(out);
        self.not_found.bin_encode(out);
        self.rate_limited.bin_encode(out);
        self.transient.bin_encode(out);
    }
}

impl BinDecode for FetchStats {
    fn bin_decode(r: &mut BinReader<'_>) -> Result<FetchStats, BinError> {
        Ok(FetchStats {
            ok: u64::bin_decode(r)?,
            not_found: u64::bin_decode(r)?,
            rate_limited: u64::bin_decode(r)?,
            transient: u64::bin_decode(r)?,
        })
    }
}

/// A [`Fetcher`] over a [`WebUniverse`].
pub struct SimFetcher<'a> {
    universe: &'a WebUniverse,
    politeness: Politeness,
    /// Probability a fetch fails transiently (deterministic per
    /// `(page, attempt)` so runs are reproducible).
    failure_rate: f64,
    /// Per-site last successful access, densely indexed by `SiteId`
    /// (`NEG_INFINITY` = never touched). The fetch path pays one array
    /// read instead of a hash probe per attempt; exports stay identical to
    /// the old map form (finite entries, ascending site id).
    last_site_access: Vec<f64>,
    attempt_counter: u64,
    stats: FetchStats,
    /// Whether to expose last-modified dates (real servers often do not;
    /// §5.3's checksum design assumes they may be absent).
    report_last_modified: bool,
    /// Scratch buffer for link extraction, reused across fetches; each
    /// success clones it at exact size into the outcome.
    scratch_links: Vec<Url>,
}

impl<'a> SimFetcher<'a> {
    /// A fetcher with no politeness limits and no failures.
    pub fn new(universe: &'a WebUniverse) -> SimFetcher<'a> {
        SimFetcher {
            universe,
            politeness: Politeness::unrestricted(),
            failure_rate: 0.0,
            last_site_access: vec![f64::NEG_INFINITY; universe.site_count()],
            attempt_counter: 0,
            stats: FetchStats::default(),
            report_last_modified: false,
            scratch_links: Vec::new(),
        }
    }

    /// Set politeness constraints.
    pub fn with_politeness(mut self, politeness: Politeness) -> SimFetcher<'a> {
        self.politeness = politeness;
        self
    }

    /// Inject transient failures with the given probability.
    pub fn with_failure_rate(mut self, rate: f64) -> SimFetcher<'a> {
        assert!((0.0..=1.0).contains(&rate));
        self.failure_rate = rate;
        self
    }

    /// Report last-modified dates on success.
    pub fn with_last_modified(mut self) -> SimFetcher<'a> {
        self.report_last_modified = true;
        self
    }

    /// Accumulated counters.
    pub fn stats(&self) -> FetchStats {
        self.stats
    }

    /// Restore replay-relevant state exported by [`Fetcher::export_state`]
    /// (politeness/failure configuration is set separately via the
    /// builders).
    pub fn restore_state(&mut self, state: FetcherState) {
        self.last_site_access.fill(f64::NEG_INFINITY);
        for (site, t) in state.last_site_access {
            if let Some(slot) = self.last_site_access.get_mut(site.index()) {
                *slot = t;
            }
        }
        self.attempt_counter = state.attempt_counter;
        self.stats = state.stats;
    }

    /// Record a successful site contact at `t` (out-of-universe sites are
    /// ignored; they can only arise from hand-crafted URLs).
    #[inline]
    fn stamp_site(&mut self, site: SiteId, t: f64) {
        if let Some(slot) = self.last_site_access.get_mut(site.index()) {
            *slot = t;
        }
    }

    fn transient_failure(&mut self, url: Url) -> bool {
        if self.failure_rate == 0.0 {
            return false;
        }
        // Deterministic hash of (page, attempt#).
        let mut z = url.page.0 ^ self.attempt_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.failure_rate
    }
}

impl Fetcher for SimFetcher<'_> {
    fn fetch(&mut self, url: Url, t: f64) -> Result<FetchOutcome, FetchError> {
        self.attempt_counter += 1;
        // Politeness: time-of-day window. Hoisted behind the configuration
        // check so unrestricted fetchers (the common engine setup) skip the
        // day-fraction arithmetic entirely.
        if self.politeness.night_window.is_some() {
            let day_frac = t - t.floor();
            if !self.politeness.allows_time_of_day(day_frac) {
                self.stats.rate_limited += 1;
                let retry_at = t.floor()
                    + self
                        .politeness
                        .night_window
                        .map(|(s, _)| if day_frac < s { s } else { s + 1.0 })
                        .unwrap_or(0.0);
                return Err(FetchError::RateLimited { retry_at });
            }
        }
        // Politeness: per-site spacing (untouched sites sit at −∞, so the
        // bound below never triggers for them).
        if let Some(&last) = self.last_site_access.get(url.site.index()) {
            let earliest = last + self.politeness.min_delay_days;
            if t < earliest {
                self.stats.rate_limited += 1;
                return Err(FetchError::RateLimited { retry_at: earliest });
            }
        }
        if self.transient_failure(url) {
            self.stats.transient += 1;
            return Err(FetchError::Transient);
        }
        self.stamp_site(url.site, t);
        if url.page.index() >= self.universe.page_count()
            || !self.universe.alive(url.page, t)
        {
            self.stats.not_found += 1;
            return Err(FetchError::NotFound);
        }
        self.stats.ok += 1;
        self.universe.out_links_into(url.page, t, &mut self.scratch_links);
        Ok(FetchOutcome {
            checksum: self.universe.checksum_at(url.page, t),
            links: self.scratch_links.clone(),
            last_modified: self
                .report_last_modified
                .then(|| self.universe.last_modified(url.page, t)),
        })
    }

    fn export_state(&self) -> Option<FetcherState> {
        // Dense array ascends by site id, so the export is sorted for free.
        let last_site_access: Vec<(SiteId, f64)> = self
            .last_site_access
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t.is_finite())
            .map(|(s, &t)| (SiteId(s as u32), t))
            .collect();
        Some(FetcherState {
            last_site_access,
            attempt_counter: self.attempt_counter,
            stats: self.stats,
        })
    }

    fn restore_state(&mut self, state: FetcherState) {
        SimFetcher::restore_state(self, state);
    }

    /// Mirror of [`SimFetcher::fetch`]'s state transitions, keyed on the
    /// *recorded* result instead of recomputing one: the attempt counter
    /// always advances; rate-limited and transient attempts never touch
    /// the per-site clock; successful and not-found attempts do (`fetch`
    /// stamps the site before discovering the page is dead).
    fn observe_replay(&mut self, url: Url, t: f64, result: &Result<FetchOutcome, FetchError>) {
        self.attempt_counter += 1;
        match result {
            Ok(_) => {
                self.stats.ok += 1;
                self.stamp_site(url.site, t);
            }
            Err(FetchError::NotFound) => {
                self.stats.not_found += 1;
                self.stamp_site(url.site, t);
            }
            Err(FetchError::RateLimited { .. }) => self.stats.rate_limited += 1,
            Err(FetchError::Transient) => self.stats.transient += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniverseConfig;
    use webevo_types::PageId;

    fn universe() -> WebUniverse {
        WebUniverse::generate(UniverseConfig::test_scale(3))
    }

    #[test]
    fn fetch_alive_page_succeeds() {
        let u = universe();
        let mut f = SimFetcher::new(&u);
        let root = u.sites()[0].slots[0][0];
        let out = f.fetch(u.url_of(root), 5.0).unwrap();
        assert_eq!(out.checksum, u.checksum_at(root, 5.0));
        assert!(out.last_modified.is_none());
        assert_eq!(f.stats().ok, 1);
    }

    #[test]
    fn fetch_dead_page_is_not_found() {
        let u = universe();
        let dead = u
            .pages()
            .iter()
            .find(|p| p.death < 100.0)
            .expect("churn produces deaths");
        let mut f = SimFetcher::new(&u);
        assert_eq!(
            f.fetch(u.url_of(dead.id), dead.death + 0.5),
            Err(FetchError::NotFound)
        );
        assert_eq!(f.stats().not_found, 1);
    }

    #[test]
    fn fetch_unborn_page_is_not_found() {
        let u = universe();
        let late = u
            .pages()
            .iter()
            .find(|p| p.birth > 10.0)
            .expect("churn produces late births");
        let mut f = SimFetcher::new(&u);
        assert_eq!(
            f.fetch(u.url_of(late.id), late.birth - 1.0),
            Err(FetchError::NotFound)
        );
    }

    #[test]
    fn unknown_page_is_not_found() {
        let u = universe();
        let mut f = SimFetcher::new(&u);
        let bogus = Url::new(u.sites()[0].id, PageId(u.page_count() as u64 + 5));
        assert_eq!(f.fetch(bogus, 1.0), Err(FetchError::NotFound));
    }

    #[test]
    fn per_site_spacing_enforced() {
        let u = universe();
        let politeness = Politeness { min_delay_days: 0.01, night_window: None };
        let mut f = SimFetcher::new(&u).with_politeness(politeness);
        let root = u.sites()[0].slots[0][0];
        let url = u.url_of(root);
        assert!(f.fetch(url, 1.0).is_ok());
        match f.fetch(url, 1.005) {
            Err(FetchError::RateLimited { retry_at }) => {
                assert!((retry_at - 1.01).abs() < 1e-9)
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
        assert!(f.fetch(url, 1.01).is_ok());
        // A different site is not limited.
        let other_root = u.sites()[1].slots[0][0];
        assert!(f.fetch(u.url_of(other_root), 1.0101).is_ok());
    }

    #[test]
    fn night_window_enforced() {
        let u = universe();
        let mut f = SimFetcher::new(&u).with_politeness(Politeness::paper());
        let root = u.sites()[0].slots[0][0];
        let url = u.url_of(root);
        // Noon (day fraction 0.5) is outside the night window.
        assert!(matches!(
            f.fetch(url, 3.5),
            Err(FetchError::RateLimited { .. })
        ));
        // 10PM (0.92) is inside.
        assert!(f.fetch(url, 3.92).is_ok());
        // 3AM (0.125) is inside (wrapped window).
        assert!(f.fetch(url, 5.125).is_ok());
    }

    #[test]
    fn paper_politeness_explains_window_size() {
        let p = Politeness::paper();
        let max = p.max_pages_per_site_per_day();
        // 9 hours at one page per 10 s = 3,240 pages: the 3,000-page
        // window of §2.3 fits just under it.
        assert!((max - 3240.0).abs() < 1.0, "max={max}");
        assert!(max > 3000.0);
    }

    #[test]
    fn failure_injection_is_deterministic_and_calibrated() {
        let u = universe();
        let root = u.sites()[0].slots[0][0];
        let url = u.url_of(root);
        let run = || {
            let mut f = SimFetcher::new(&u).with_failure_rate(0.3);
            let mut failures = 0;
            for i in 0..2000 {
                if f.fetch(url, 1.0 + i as f64 * 0.001) == Err(FetchError::Transient) {
                    failures += 1;
                }
            }
            failures
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "failure pattern must be reproducible");
        let rate = a as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn replay_observation_matches_live_fetching() {
        // Drive one fetcher live, a second by replaying the recorded
        // results: their exported states must be identical — the property
        // WAL recovery leans on.
        let u = universe();
        let root = u.sites()[0].slots[0][0];
        let url = u.url_of(root);
        let politeness = Politeness { min_delay_days: 0.01, night_window: None };
        let mut live = SimFetcher::new(&u)
            .with_politeness(politeness)
            .with_failure_rate(0.3);
        let mut results = Vec::new();
        for i in 0..200 {
            let t = 1.0 + i as f64 * 0.003;
            results.push((url, t, live.fetch(url, t)));
        }
        let mut replayed = SimFetcher::new(&u)
            .with_politeness(politeness)
            .with_failure_rate(0.3);
        for (url, t, result) in &results {
            replayed.observe_replay(*url, *t, result);
        }
        assert_eq!(live.export_state(), replayed.export_state());
        // And the replayed fetcher continues exactly like the live one.
        assert_eq!(live.fetch(url, 2.0), replayed.fetch(url, 2.0));
    }

    #[test]
    fn state_export_restore_roundtrip() {
        let u = universe();
        let mut f = SimFetcher::new(&u).with_failure_rate(0.2);
        for i in 0..50 {
            let root = u.sites()[i % u.sites().len()].slots[0][0];
            let _ = f.fetch(u.url_of(root), 1.0 + i as f64 * 0.01);
        }
        let state = f.export_state().expect("sim fetcher is stateful");
        let mut restored = SimFetcher::new(&u).with_failure_rate(0.2);
        restored.restore_state(state);
        assert_eq!(f.export_state(), restored.export_state());
        let root = u.sites()[0].slots[0][0];
        assert_eq!(f.fetch(u.url_of(root), 3.0), restored.fetch(u.url_of(root), 3.0));
    }

    #[test]
    fn last_modified_reporting() {
        let u = universe();
        let mut f = SimFetcher::new(&u).with_last_modified();
        let page = u
            .pages()
            .iter()
            .find(|p| p.events.len > 0 && p.death.is_infinite())
            .expect("changing page");
        // Probe strictly between the first change and the next one (hot
        // pages can change again within any fixed offset).
        let e = u.events_of(page.id)[0];
        let next = u.events_of(page.id).get(1).copied().unwrap_or(e + 1.0);
        let out = f.fetch(u.url_of(page.id), e + (next - e) / 2.0).unwrap();
        assert_eq!(out.last_modified, Some(e));
    }
}
