//! Universe generation parameters.

use serde::{Deserialize, Serialize};
use webevo_types::domain::PerDomain;
use webevo_types::Domain;

/// Parameters for generating a [`crate::WebUniverse`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Number of sites per domain class. The paper's Table 1 mix is
    /// com:edu:netorg:gov = 132:78:30:30.
    pub sites_per_domain: PerDomain<usize>,
    /// BFS slots (page locations) per site. The paper's window is 3,000
    /// pages; smaller values keep tests fast while preserving structure.
    pub pages_per_site: usize,
    /// How many leading BFS slots are visible in the crawl window
    /// (§2.1's "page window"). Must be ≤ `pages_per_site`; slots beyond the
    /// window exist (pages can live "deeper in the site") but daily
    /// monitoring does not see them.
    pub window_size: usize,
    /// Simulation horizon in days. Change schedules and lifespans are
    /// materialized up to this time.
    pub horizon_days: f64,
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
    /// BFS tree branching factor (children per page).
    pub branching: usize,
    /// Extra random intra-site links per page (besides tree links).
    pub extra_links_per_page: usize,
    /// Probability that a page carries one cross-site link (to another
    /// site's root) — the glue that makes site-level PageRank meaningful.
    pub cross_link_probability: f64,
    /// Enable page birth/death. When false every page lives for the whole
    /// horizon (useful for isolating change-rate effects in tests).
    pub churn: bool,
}

impl UniverseConfig {
    /// The paper's experimental scale: 270 sites in the Table 1 mix, 3,000
    /// page window, 128-day horizon (1999-02-17 → 1999-06-24). Roughly
    /// 810k page slots — use for full-fidelity runs only.
    pub fn paper_scale(seed: u64) -> UniverseConfig {
        UniverseConfig {
            sites_per_domain: PerDomain::from_fn(|d| d.paper_site_count()),
            pages_per_site: 3_000,
            window_size: 3_000,
            horizon_days: 128.0,
            seed,
            branching: 8,
            extra_links_per_page: 2,
            cross_link_probability: 0.05,
            churn: true,
        }
    }

    /// A scaled-down universe preserving the Table 1 domain *ratio*
    /// (44:26:10:10) with `pages_per_site` slots: the default for examples
    /// and benchmarks.
    pub fn medium_scale(seed: u64) -> UniverseConfig {
        UniverseConfig {
            sites_per_domain: PerDomain::from_fn(|d| match d {
                Domain::Com => 44,
                Domain::Edu => 26,
                Domain::NetOrg => 10,
                Domain::Gov => 10,
            }),
            pages_per_site: 120,
            window_size: 100,
            horizon_days: 128.0,
            seed,
            branching: 6,
            extra_links_per_page: 2,
            cross_link_probability: 0.05,
            churn: true,
        }
    }

    /// A universe scaled to roughly `total_pages` page slots across
    /// `total_sites` sites, preserving the Table 1 domain ratio
    /// (132:78:30:30). The horizon is set to `horizon_days` so change
    /// schedules are materialized only as far as the run needs them —
    /// at millions of pages the event arena is the dominant allocation,
    /// and a 128-day horizon for a 12-day run would waste most of it.
    pub fn scaled(
        seed: u64,
        total_sites: usize,
        total_pages: usize,
        horizon_days: f64,
    ) -> UniverseConfig {
        assert!(total_sites > 0, "need at least one site");
        assert!(total_pages >= total_sites, "need at least one page per site");
        // Largest-remainder apportionment of the Table 1 mix; every
        // domain keeps at least one site once the count allows it.
        let weights = [
            (Domain::Com, 132usize),
            (Domain::Edu, 78),
            (Domain::NetOrg, 30),
            (Domain::Gov, 30),
        ];
        let mut counts = PerDomain::from_fn(|_| 0usize);
        let mut assigned = 0usize;
        for &(d, w) in &weights {
            let n = total_sites * w / 270;
            *counts.get_mut(d) = n;
            assigned += n;
        }
        // Distribute the rounding remainder in weight order.
        for &(d, _) in weights.iter().cycle().take(4 * 270) {
            if assigned == total_sites {
                break;
            }
            *counts.get_mut(d) += 1;
            assigned += 1;
        }
        let pages_per_site = total_pages.div_ceil(total_sites);
        UniverseConfig {
            sites_per_domain: counts,
            pages_per_site,
            window_size: pages_per_site,
            horizon_days,
            seed,
            branching: 8,
            extra_links_per_page: 2,
            cross_link_probability: 0.05,
            churn: true,
        }
    }

    /// A tiny universe for unit tests.
    pub fn test_scale(seed: u64) -> UniverseConfig {
        UniverseConfig {
            sites_per_domain: PerDomain::from_fn(|d| match d {
                Domain::Com => 5,
                Domain::Edu => 3,
                Domain::NetOrg => 1,
                Domain::Gov => 1,
            }),
            pages_per_site: 30,
            window_size: 25,
            horizon_days: 130.0,
            seed,
            branching: 4,
            extra_links_per_page: 1,
            cross_link_probability: 0.1,
            churn: true,
        }
    }

    /// Total number of sites.
    pub fn total_sites(&self) -> usize {
        Domain::ALL.iter().map(|&d| *self.sites_per_domain.get(d)).sum()
    }

    /// Validate internal consistency; panics with a descriptive message on
    /// misconfiguration (configs are developer-provided, not user input).
    pub fn validate(&self) {
        assert!(self.total_sites() > 0, "need at least one site");
        assert!(self.pages_per_site > 0, "need at least one page per site");
        assert!(
            self.window_size > 0 && self.window_size <= self.pages_per_site,
            "window must be within pages_per_site"
        );
        assert!(self.horizon_days > 0.0, "horizon must be positive");
        assert!(self.branching >= 1, "branching must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.cross_link_probability),
            "cross-link probability is a probability"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let c = UniverseConfig::paper_scale(1);
        assert_eq!(c.total_sites(), 270);
        assert_eq!(*c.sites_per_domain.get(Domain::Com), 132);
        assert_eq!(*c.sites_per_domain.get(Domain::Edu), 78);
        assert_eq!(*c.sites_per_domain.get(Domain::NetOrg), 30);
        assert_eq!(*c.sites_per_domain.get(Domain::Gov), 30);
        assert_eq!(c.pages_per_site, 3_000);
        c.validate();
    }

    #[test]
    fn scales_validate() {
        UniverseConfig::medium_scale(1).validate();
        UniverseConfig::test_scale(1).validate();
    }

    #[test]
    #[should_panic(expected = "window")]
    fn window_larger_than_site_rejected() {
        let mut c = UniverseConfig::test_scale(1);
        c.window_size = c.pages_per_site + 1;
        c.validate();
    }

    #[test]
    fn scaled_hits_requested_totals() {
        let c = UniverseConfig::scaled(7, 270, 1_000_000, 12.0);
        c.validate();
        assert_eq!(c.total_sites(), 270);
        assert!(c.total_sites() * c.pages_per_site >= 1_000_000);
        let com = *c.sites_per_domain.get(Domain::Com) as f64 / 270.0;
        assert!((com - 132.0 / 270.0).abs() < 0.01);
        // Tiny site counts still apportion every site somewhere.
        let tiny = UniverseConfig::scaled(7, 3, 90, 30.0);
        tiny.validate();
        assert_eq!(tiny.total_sites(), 3);
        assert_eq!(tiny.pages_per_site, 30);
    }

    #[test]
    fn medium_preserves_ratio_roughly() {
        let c = UniverseConfig::medium_scale(1);
        let com = *c.sites_per_domain.get(Domain::Com) as f64 / c.total_sites() as f64;
        assert!((com - 132.0 / 270.0).abs() < 0.01);
    }
}
