//! Simulated pages and sites.
//!
//! A **site** is a fixed array of BFS-ordered *slots* (page locations). A
//! **page** is one incarnation living in a slot for its lifetime; when it
//! dies, a fresh page (new `PageId`, new URL) is born in the same slot —
//! "pages are constantly created and removed" (§5.1) while the site keeps
//! its shape. The crawl window is the leading `window_size` slots, so pages
//! enter the window at birth and leave at death, matching §2.1's window
//! semantics. Slot 0 is the site root and never dies.
//!
//! Change schedules are *not* stored per page: every page's sorted event
//! times live as one range of the universe-wide event arena (see
//! [`crate::WebUniverse::events_of`]), so a page carries only the
//! `[start, start+len)` window and every content query is a binary search
//! over a shared, cache-friendly buffer.

use serde::{Deserialize, Serialize};
use webevo_stats::event_slice;
use webevo_types::{ChangeRate, Checksum, Domain, PageId, PageVersion, SiteId};

/// A page's slice of the universe-wide change-event arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRange {
    /// Offset of the first event in the arena.
    pub start: usize,
    /// Number of events.
    pub len: usize,
}

impl EventRange {
    /// The page's events within the shared arena.
    #[inline]
    pub fn slice<'a>(&self, arena: &'a [f64]) -> &'a [f64] {
        &arena[self.start..self.start + self.len]
    }
}

/// One page incarnation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimPage {
    /// Globally unique id (index into the universe's page table).
    pub id: PageId,
    /// Owning site.
    pub site: SiteId,
    /// BFS slot within the site.
    pub slot: usize,
    /// Birth time (days). The initial occupant of a slot is born at 0.
    pub birth: f64,
    /// Death time (days); `f64::INFINITY` for immortal pages (roots and
    /// no-churn universes).
    pub death: f64,
    /// True Poisson change rate — ground truth, never shown to crawlers.
    pub rate: ChangeRate,
    /// The page's materialized change schedule (absolute times within
    /// `[birth, min(death, horizon))`), as a range of the universe's
    /// shared event arena.
    pub events: EventRange,
}

impl SimPage {
    /// Is the page alive (born, not yet deleted) at `t`?
    #[inline]
    pub fn alive(&self, t: f64) -> bool {
        t >= self.birth && t < self.death
    }

    /// Content version at `t` (0 at birth, +1 per change event). `events`
    /// is this page's schedule, `universe.events_of(self.id)`.
    pub fn version_at(&self, events: &[f64], t: f64) -> PageVersion {
        PageVersion(event_slice::version_at(events, t))
    }

    /// Content checksum at `t` — what a crawl observes.
    pub fn checksum_at(&self, events: &[f64], t: f64) -> Checksum {
        Checksum::of_version(self.id.0, event_slice::version_at(events, t))
    }

    /// Did the content change in `[a, b)`? Ground truth for evaluation.
    pub fn changed_between(&self, events: &[f64], a: f64, b: f64) -> bool {
        event_slice::any_in(events, a, b)
    }

    /// Time of the last change at or before `t` (birth time if none) —
    /// the "last-modified date" a well-behaved server would report.
    pub fn last_modified(&self, events: &[f64], t: f64) -> f64 {
        event_slice::last_at_or_before(events, t).unwrap_or(self.birth)
    }

    /// Visible lifespan within an observation window `[start, end)`: the
    /// overlap of the page's life with the observation period.
    pub fn lifespan_within(&self, start: f64, end: f64) -> f64 {
        (self.death.min(end) - self.birth.max(start)).max(0.0)
    }
}

/// One simulated site: a domain, and its slots' occupancy history.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimSite {
    /// Site identifier (index into the universe's site table).
    pub id: SiteId,
    /// Domain class (fixed at generation).
    pub domain: Domain,
    /// `slots[k]` lists the successive occupants of slot `k`,
    /// time-ordered: each page's death is the next page's birth.
    pub slots: Vec<Vec<PageId>>,
}

impl SimSite {
    /// Number of slots (the site's total page capacity).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// All page incarnations that ever lived on this site.
    pub fn all_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.slots.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webevo_stats::{PoissonProcess, SimRng};

    /// A page plus its private event arena (tests don't need sharing).
    fn page(birth: f64, death: f64, lambda: f64, seed: u64) -> (SimPage, Vec<f64>) {
        let mut rng = SimRng::seed_from_u64(seed);
        let horizon = death.min(200.0);
        // Generate events on [0, horizon-birth) then shift to absolute time.
        let rel = PoissonProcess::generate(&mut rng, lambda, (horizon - birth).max(0.0));
        let arena: Vec<f64> = rel.events().iter().map(|e| e + birth).collect();
        let page = SimPage {
            id: PageId(7),
            site: SiteId(0),
            slot: 3,
            birth,
            death,
            rate: ChangeRate(lambda),
            events: EventRange { start: 0, len: arena.len() },
        };
        (page, arena)
    }

    #[test]
    fn liveness_window() {
        let (p, _) = page(10.0, 50.0, 0.1, 1);
        assert!(!p.alive(9.99));
        assert!(p.alive(10.0));
        assert!(p.alive(49.99));
        assert!(!p.alive(50.0));
    }

    #[test]
    fn checksum_changes_exactly_with_version() {
        let (p, arena) = page(0.0, f64::INFINITY, 0.5, 2);
        let events = p.events.slice(&arena);
        assert!(!events.is_empty(), "want at least one change for the test");
        let e0 = events[0];
        let before = p.checksum_at(events, e0 - 1e-6);
        let after = p.checksum_at(events, e0 + 1e-6);
        assert_ne!(before, after, "checksum must change across a change event");
        assert_eq!(
            p.checksum_at(events, e0 + 1e-6),
            p.checksum_at(
                events,
                event_slice::first_after(events, e0).map(|t| t - 1e-6).unwrap_or(100.0)
            ),
            "checksum stable between events"
        );
    }

    #[test]
    fn lifespan_censoring() {
        let (p, _) = page(10.0, 50.0, 0.0, 3);
        // Fully inside the observation period.
        assert!((p.lifespan_within(0.0, 100.0) - 40.0).abs() < 1e-12);
        // Censored at the start (page existed before observation).
        assert!((p.lifespan_within(20.0, 100.0) - 30.0).abs() < 1e-12);
        // Censored at the end.
        assert!((p.lifespan_within(0.0, 30.0) - 20.0).abs() < 1e-12);
        // Disjoint.
        assert_eq!(p.lifespan_within(60.0, 100.0), 0.0);
    }

    #[test]
    fn last_modified_defaults_to_birth() {
        let (p, arena) = page(5.0, f64::INFINITY, 0.0, 4);
        assert_eq!(p.last_modified(p.events.slice(&arena), 100.0), 5.0);
    }

    #[test]
    fn site_page_enumeration() {
        let site = SimSite {
            id: SiteId(1),
            domain: Domain::Edu,
            slots: vec![vec![PageId(0)], vec![PageId(1), PageId(2)]],
        };
        let pages: Vec<u64> = site.all_pages().map(|p| p.0).collect();
        assert_eq!(pages, vec![0, 1, 2]);
        assert_eq!(site.slot_count(), 2);
    }
}
