//! A synthetic evolving web, calibrated to the paper's measurements.
//!
//! The paper's experiment ran against the live 1999 web: 720,000 pages on
//! 270 popular sites, crawled daily for four months. That web no longer
//! exists, so this crate substitutes the closest synthetic equivalent that
//! exercises the same code paths (see DESIGN.md §2):
//!
//! * Every page changes as a **Poisson process** with a page-specific rate —
//!   exactly the model §3.4 validates against the real data.
//! * Per-domain **rate mixtures** are calibrated to Figure 2(b): more than
//!   40% of `com` pages change daily, more than half of `edu`/`gov` pages
//!   never change within four months.
//! * Pages are **born and die**; per-domain lifespan mixtures are calibrated
//!   to Figure 4(b) so the visible-lifespan study has the right censoring
//!   behaviour.
//! * Sites expose a **page window** (§2.1): the first `window_size` BFS
//!   slots of the site; pages enter and leave the window as they are
//!   created and deleted.
//! * Pages carry **links** (BFS tree + random intra-site + cross-site) so
//!   PageRank-based selection and refinement run on realistic structure.
//!
//! The crawler-facing surface is the [`Fetcher`] trait: fetching a URL at a
//! simulated time yields a checksum, extracted links and an optional
//! last-modified date — or a failure. Ground truth (true rates, change
//! times, liveness) is exposed separately for *evaluation only*; no crawler
//! component reads it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fetch;
pub mod page;
pub mod profile;
pub mod shard;
pub mod universe;

pub use config::UniverseConfig;
pub use fetch::{FetchError, FetchOutcome, Fetcher, FetcherState, Politeness, SimFetcher};
pub use page::{SimPage, SimSite};
pub use profile::DomainProfile;
pub use shard::ShardedFetcher;
pub use universe::WebUniverse;
