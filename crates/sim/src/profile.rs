//! Per-domain behaviour profiles, calibrated to §3's measurements.
//!
//! Each domain class gets a mixture over the paper's change-interval bins
//! (Figure 2(b)) and visible-lifespan bins (Figure 4(b)). Sampling a page
//! first draws its bin from the mixture, then draws the actual value
//! log-uniformly within the bin — change intervals and lifetimes plausibly
//! spread multiplicatively, and log-uniform keeps every decade of the bin
//! represented.

use serde::{Deserialize, Serialize};
use webevo_stats::dist::sample_log_uniform;
use webevo_stats::SimRng;
use webevo_types::{ChangeRate, Domain};

/// Change-interval bin edges in days for the Poisson bins (2..5). The last
/// extends to four years (the paper crudely assumed one year for
/// never-changed pages).
const INTERVAL_EDGES: [(f64, f64); 5] = [
    (1.0 / 4.0, 1.0 / 4.0), // tickers: see [`TICKER_PERIOD_DAYS`]
    (1.0, 7.0),
    (7.0, 30.0),
    (30.0, 120.0),
    (120.0, 1460.0),
];

/// Pages in the paper's first bar "changed whenever we visited" (§3.1).
/// On the real web these are script-generated pages (timestamps, counters,
/// rotating headlines) that change *deterministically* many times a day —
/// a Poisson page with a finite rate would occasionally skip a day and
/// fall out of the bucket. The simulator models them as tickers changing
/// every `TICKER_PERIOD_DAYS`, which also matches the paper's reading of
/// Figure 1(b): for such pages the estimate is "the interval between the
/// batches of changes".
pub const TICKER_PERIOD_DAYS: f64 = 0.25;

/// How a sampled page changes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageBehavior {
    /// Nominal change rate (events/day).
    pub rate: ChangeRate,
    /// Deterministic sub-daily changer (the paper's first bar) rather than
    /// a Poisson process.
    pub ticker: bool,
}

/// Lifespan bin edges in days (Figure 4's bins, the last extending to two
/// years).
const LIFESPAN_EDGES: [(f64, f64); 4] = [(1.0, 7.0), (7.0, 30.0), (30.0, 120.0), (120.0, 720.0)];

/// Behaviour profile of one domain class.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainProfile {
    /// The domain this profile describes.
    pub domain: Domain,
    /// Mixture over the five change-interval bins of Figure 2
    /// (≤1d, 1d–1w, 1w–1m, 1m–4m, >4m). Sums to 1.
    pub interval_mix: [f64; 5],
    /// Mixture over the four lifespan bins of Figure 4
    /// (≤1w, 1w–1m, 1m–4m, >4m). Sums to 1.
    pub lifespan_mix: [f64; 4],
}

impl DomainProfile {
    /// The calibrated profile for a domain, following the fractions the
    /// paper reports or plots:
    ///
    /// * `com`: >40% change daily (§3.1), shortest-lived pages (§3.2);
    /// * `netorg`: second most dynamic (§3.3);
    /// * `edu`, `gov`: >50% unchanged over 4 months (§3.1), >50% of pages
    ///   live beyond 4 months (§3.2).
    pub fn calibrated(domain: Domain) -> DomainProfile {
        let (interval_mix, lifespan_mix) = match domain {
            Domain::Com => ([0.45, 0.16, 0.14, 0.13, 0.12], [0.15, 0.17, 0.28, 0.40]),
            Domain::Edu => ([0.08, 0.10, 0.12, 0.20, 0.50], [0.06, 0.09, 0.30, 0.55]),
            Domain::NetOrg => ([0.09, 0.18, 0.23, 0.28, 0.22], [0.09, 0.15, 0.31, 0.45]),
            Domain::Gov => ([0.05, 0.08, 0.12, 0.25, 0.50], [0.05, 0.10, 0.30, 0.55]),
        };
        DomainProfile { domain, interval_mix, lifespan_mix }
    }

    /// Sample a page's change behaviour: bin from the mixture; the first
    /// bin yields deterministic tickers, the others Poisson rates with the
    /// interval log-uniform within the bin.
    pub fn sample_behavior(&self, rng: &mut SimRng) -> PageBehavior {
        let bin = rng.weighted_index(&self.interval_mix);
        if bin == 0 {
            return PageBehavior {
                rate: ChangeRate::per_interval_days(TICKER_PERIOD_DAYS),
                ticker: true,
            };
        }
        let (lo, hi) = INTERVAL_EDGES[bin];
        let interval = sample_log_uniform(rng, lo, hi);
        PageBehavior { rate: ChangeRate::per_interval_days(interval), ticker: false }
    }

    /// Sample just a change rate (for scheduling workloads where only the
    /// rate mixture matters).
    pub fn sample_rate(&self, rng: &mut SimRng) -> ChangeRate {
        self.sample_behavior(rng).rate
    }

    /// Sample a page lifetime in days, for a *slot* (renewal chain).
    ///
    /// `lifespan_mix` is calibrated to Figure 4, which counts **observed
    /// pages**. A slot with short lifetimes cycles through many
    /// incarnations during the experiment, so observed pages are
    /// length-biased toward short lives: observing fraction `o_i` for a
    /// class requires the *slot* mixture `s_i ∝ o_i · E\[L_i\]` (incarnation
    /// count per slot ∝ 1/E\[L_i\]). The weights below apply that
    /// correction, so the monitor's per-page histogram reproduces the
    /// target mixture.
    pub fn sample_lifetime(&self, rng: &mut SimRng) -> f64 {
        let mut weights = [0.0f64; 4];
        for (i, w) in weights.iter_mut().enumerate() {
            let (lo, hi) = LIFESPAN_EDGES[i];
            // Mean of a log-uniform on [lo, hi].
            let mean = (hi - lo) / (hi / lo).ln();
            *w = self.lifespan_mix[i] * mean;
        }
        let bin = rng.weighted_index(&weights);
        let (lo, hi) = LIFESPAN_EDGES[bin];
        sample_log_uniform(rng, lo, hi)
    }

    /// Expected fraction of pages whose *true* mean change interval falls
    /// in each Figure 2 bin — what a long, perfectly sampled experiment
    /// would recover.
    pub fn expected_interval_fractions(&self) -> [f64; 5] {
        self.interval_mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixtures_are_distributions() {
        for d in Domain::ALL {
            let p = DomainProfile::calibrated(d);
            let si: f64 = p.interval_mix.iter().sum();
            let sl: f64 = p.lifespan_mix.iter().sum();
            assert!((si - 1.0).abs() < 1e-12, "{d}: interval mix sums to {si}");
            assert!((sl - 1.0).abs() < 1e-12, "{d}: lifespan mix sums to {sl}");
        }
    }

    #[test]
    fn com_is_most_dynamic() {
        // §3.1: more than 40% of com pages changed every day; fewer than
        // 10% in every other domain.
        assert!(DomainProfile::calibrated(Domain::Com).interval_mix[0] > 0.40);
        for d in [Domain::Edu, Domain::NetOrg, Domain::Gov] {
            assert!(DomainProfile::calibrated(d).interval_mix[0] < 0.10);
        }
    }

    #[test]
    fn edu_gov_are_static() {
        // §3.1: more than 50% of edu/gov pages did not change for 4 months.
        assert!(DomainProfile::calibrated(Domain::Edu).interval_mix[4] >= 0.50);
        assert!(DomainProfile::calibrated(Domain::Gov).interval_mix[4] >= 0.50);
    }

    #[test]
    fn overall_daily_fraction_exceeds_twenty_percent() {
        // §3.1: "More than 20% of pages had changed whenever we visited
        // them" — the site-count-weighted mixture must reproduce that.
        let overall: f64 = Domain::ALL
            .iter()
            .map(|&d| {
                DomainProfile::calibrated(d).interval_mix[0] * d.paper_site_fraction()
            })
            .sum();
        assert!(overall > 0.20, "overall daily fraction {overall}");
    }

    #[test]
    fn lifespans_mostly_exceed_a_month() {
        // §3.2: more than 70% of pages remained over a month.
        let overall: f64 = Domain::ALL
            .iter()
            .map(|&d| {
                let p = DomainProfile::calibrated(d);
                (p.lifespan_mix[2] + p.lifespan_mix[3]) * d.paper_site_fraction()
            })
            .sum();
        assert!(overall > 0.70, "overall >1month fraction {overall}");
        // and >50% of edu/gov pages stay beyond 4 months.
        assert!(DomainProfile::calibrated(Domain::Edu).lifespan_mix[3] >= 0.50);
        assert!(DomainProfile::calibrated(Domain::Gov).lifespan_mix[3] >= 0.50);
    }

    #[test]
    fn sampled_rates_land_in_their_bins() {
        let mut rng = SimRng::seed_from_u64(1);
        let p = DomainProfile::calibrated(Domain::Com);
        let mut daily = 0usize;
        let mut tickers = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let b = p.sample_behavior(&mut rng);
            let interval = b.rate.mean_interval_days();
            assert!(
                (TICKER_PERIOD_DAYS..=1460.0).contains(&interval),
                "interval {interval} out of range"
            );
            if b.ticker {
                tickers += 1;
                assert_eq!(interval, TICKER_PERIOD_DAYS);
            }
            if interval <= 1.0 {
                daily += 1;
            }
        }
        let frac = daily as f64 / n as f64;
        assert!((frac - 0.45).abs() < 0.02, "daily fraction {frac}");
        assert_eq!(daily, tickers, "the first bin is exactly the tickers");
    }

    #[test]
    fn sampled_lifetimes_are_length_bias_corrected() {
        // Slot lifetimes oversample long classes so that *observed pages*
        // (incarnation count ∝ 1/lifetime) reproduce the Figure 4 mixture.
        let mut rng = SimRng::seed_from_u64(2);
        let p = DomainProfile::calibrated(Domain::Gov);
        let n = 20_000;
        let mut over_4m = 0usize;
        let mut weighted_over_4m = 0.0; // incarnation-weighted count
        let mut weighted_total = 0.0;
        for _ in 0..n {
            let l = p.sample_lifetime(&mut rng);
            assert!((1.0..=720.0).contains(&l));
            if l > 120.0 {
                over_4m += 1;
                weighted_over_4m += 1.0 / l;
            }
            weighted_total += 1.0 / l;
        }
        // Slot-level: long lives dominate after the correction.
        assert!(over_4m as f64 / n as f64 > 0.8);
        // Observed-page level (1/L weighting): back to the Fig 4 target.
        let observed = weighted_over_4m / weighted_total;
        assert!((observed - 0.55).abs() < 0.05, "observed >4m fraction {observed}");
    }
}
