//! The event-arena equivalence contract.
//!
//! PR 9 moved page change schedules out of per-page `PoissonProcess`
//! allocations into one universe-wide event arena: a page carries only an
//! `[start, start+len)` window and every content query is a binary search
//! over the shared buffer. The owned `PoissonProcess` path stays in
//! `webevo-stats` as the oracle, and these properties pin the two
//! implementations against each other — generation draw-for-draw, and
//! every query (`checksum_at`, `changed_between`, `alive`,
//! `last_modified`) on a dense time grid *and* at each event boundary
//! nudged by ±1 ulp, where half-open-interval and `<= t` tie-breaking
//! bugs would hide.

use proptest::prelude::*;
use webevo_sim::page::EventRange;
use webevo_sim::{SimPage, UniverseConfig, WebUniverse};
use webevo_stats::{generate_poisson_into, PoissonProcess, SimRng};
use webevo_types::{ChangeRate, Checksum, PageId, SiteId};

/// Next representable `f64` above `x` (`f64::next_up` needs rustc 1.86;
/// the workspace MSRV is 1.75). Event times are positive and finite, so
/// the bit-increment form is exact.
fn ulp_up(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0);
    f64::from_bits(x.to_bits() + 1)
}

/// Next representable `f64` below `x` (see [`ulp_up`]).
fn ulp_down(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0);
    f64::from_bits(x.to_bits() - 1)
}

/// Query instants that stress the binary searches: a dense grid over
/// `[lo, hi]` plus each event time and its ±1 ulp neighbours.
fn probe_times(events: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    let steps = 48;
    let mut ts: Vec<f64> =
        (0..=steps).map(|i| lo + (hi - lo) * i as f64 / steps as f64).collect();
    for &e in events {
        ts.push(ulp_down(e));
        ts.push(e);
        ts.push(ulp_up(e));
    }
    ts
}

proptest! {
    /// `generate_poisson_into` (the arena writer) is draw-for-draw and
    /// rounding-for-rounding identical to `PoissonProcess::generate`
    /// followed by an `e + birth` shift — same RNG state in, bitwise the
    /// same schedule out.
    #[test]
    fn arena_generation_matches_owned_process(
        seed in 0u64..u64::MAX,
        lambda in 0.0f64..4.0,
        birth in 0.0f64..60.0,
        span in 0.0f64..90.0,
    ) {
        let mut rng_owned = SimRng::seed_from_u64(seed);
        let mut rng_arena = SimRng::seed_from_u64(seed);
        let owned = PoissonProcess::generate(&mut rng_owned, lambda, span);
        let mut arena = Vec::new();
        generate_poisson_into(&mut rng_arena, lambda, span, birth, &mut arena);
        prop_assert_eq!(arena.len(), owned.count());
        for (a, &e) in arena.iter().zip(owned.events()) {
            prop_assert_eq!(a.to_bits(), (e + birth).to_bits());
        }
    }

    /// Every `SimPage` content query agrees with the owned-process oracle
    /// at every probe instant, boundaries ±1 ulp included.
    #[test]
    fn page_queries_match_owned_oracle(
        seed in 0u64..u64::MAX,
        lambda in 0.0f64..3.0,
        birth in 0.0f64..40.0,
        life in 1.0f64..80.0,
    ) {
        let horizon = 128.0;
        let death = birth + life;
        let span = (death.min(horizon) - birth).max(0.0);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut arena = Vec::new();
        generate_poisson_into(&mut rng, lambda, span, birth, &mut arena);
        let page = SimPage {
            id: PageId(11),
            site: SiteId(2),
            slot: 1,
            birth,
            death,
            rate: ChangeRate(lambda),
            events: EventRange { start: 0, len: arena.len() },
        };
        // The oracle holds the same absolute event times as an owned
        // process, the way pages stored them before the arena.
        let oracle = PoissonProcess::from_sorted_events(arena.clone(), horizon);
        let events = page.events.slice(&arena);

        let ts = probe_times(events, birth - 1.0, horizon + 1.0);
        for &t in &ts {
            prop_assert_eq!(page.version_at(events, t).0, oracle.version_at(t));
            prop_assert_eq!(
                page.checksum_at(events, t),
                Checksum::of_version(page.id.0, oracle.version_at(t)),
                "checksum diverged at t={}", t
            );
            let lm = oracle.last_event_at_or_before(t).unwrap_or(birth);
            prop_assert_eq!(
                page.last_modified(events, t).to_bits(),
                lm.to_bits(),
                "last_modified diverged at t={}", t
            );
            prop_assert_eq!(page.alive(t), t >= birth && t < death);
        }

        // `changed_between` over ordered pairs: the grid against itself,
        // and the ±1 ulp brackets around each of the leading events
        // (where an off-by-one in the half-open interval would flip the
        // answer).
        let grid: Vec<f64> = ts.iter().copied().take(49).collect();
        for (i, &a) in grid.iter().enumerate() {
            for &b in &grid[i..] {
                prop_assert_eq!(
                    page.changed_between(events, a, b),
                    oracle.any_in(a, b),
                    "changed_between diverged on [{}, {})", a, b
                );
            }
        }
        for &e in events.iter().take(8) {
            prop_assert!(page.changed_between(events, ulp_down(e), ulp_up(e)));
            prop_assert_eq!(
                page.changed_between(events, e, ulp_up(e)),
                oracle.any_in(e, ulp_up(e))
            );
            prop_assert_eq!(
                page.changed_between(events, ulp_up(e), ulp_up(e)),
                oracle.any_in(ulp_up(e), ulp_up(e))
            );
        }
    }

    /// The integration point: a generated universe's arena-backed queries
    /// match an oracle rebuilt from each page's arena slice, across every
    /// page and incarnation.
    #[test]
    fn universe_schedules_match_owned_oracle(seed in 0u64..1u64 << 32) {
        let universe = WebUniverse::generate(UniverseConfig::test_scale(seed));
        let horizon = universe.config().horizon_days;
        for page in universe.pages() {
            let events = universe.events_of(page.id);
            let oracle = PoissonProcess::from_sorted_events(events.to_vec(), horizon);
            let ts = probe_times(events, page.birth - 0.5, page.death.min(horizon) + 0.5);
            for &t in &ts {
                prop_assert_eq!(
                    universe.checksum_at(page.id, t),
                    Checksum::of_version(page.id.0, oracle.version_at(t))
                );
                prop_assert_eq!(
                    universe.last_modified(page.id, t).to_bits(),
                    oracle.last_event_at_or_before(t).unwrap_or(page.birth).to_bits()
                );
                prop_assert_eq!(universe.alive(page.id, t), t >= page.birth && t < page.death);
            }
            for w in ts.windows(2) {
                prop_assert_eq!(
                    universe.changed_between(page.id, w[0], w[1]),
                    oracle.any_in(w[0], w[1])
                );
            }
        }
    }
}
