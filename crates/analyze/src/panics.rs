//! Panic-path audit: `unwrap()`/`expect()` budgets for the durability core.
//!
//! `core` and `store` sit on the snapshot/WAL path, where a panic means a
//! truncated checkpoint rather than a failed request. Existing panic sites
//! are grandfathered through per-file budgets in `ANALYZE.allow`; the audit
//! makes the count a ratchet — going over budget is an error, while a count
//! below budget is a note inviting the budget down. New files start at zero.

use crate::allow::Allowlist;
use crate::report::{Finding, Lint, Severity};
use crate::scan::CrateSources;
use crate::AnalyzeConfig;

/// Audit one crate's panic sites against its budgets.
pub fn run(
    config: &AnalyzeConfig,
    krate: &CrateSources,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) {
    if !config.panic_budget_crates.iter().any(|c| c == &krate.name) {
        return;
    }
    for file in &krate.files {
        let count = count_panic_sites(file);
        let crate_rel = file
            .rel_path
            .strip_prefix(&format!("crates/{}/", krate.name))
            .unwrap_or(&file.rel_path)
            .to_string();
        let budget = allow.panic_budget(&crate_rel).unwrap_or(0);
        if count > budget {
            findings.push(Finding::new(
                Lint::PanicBudget,
                Severity::Error,
                &file.rel_path,
                0,
                format!(
                    "{count} non-test `unwrap()`/`expect()` sites exceed the budget of \
                     {budget}. Convert the new sites to `Result`, or (for a justified \
                     invariant) raise the `panic-budget {crate_rel}` entry in \
                     ANALYZE.allow — budgets should only go down"
                ),
            ));
        } else if count < budget {
            findings.push(Finding::new(
                Lint::PanicBudget,
                Severity::Note,
                &file.rel_path,
                0,
                format!(
                    "only {count} panic sites against a budget of {budget} — lower the \
                     `panic-budget {crate_rel}` entry to ratchet the budget down"
                ),
            ));
        }
    }
}

/// Count `.unwrap()` / `.expect(` call sites outside `#[cfg(test)]` regions.
///
/// Matching the preceding `.` excludes definitions (`fn unwrap`) and
/// standalone idents; `unwrap_or`/`unwrap_or_default`/`expect_err` are
/// distinct identifiers, so they never match.
pub fn count_panic_sites(file: &crate::scan::SourceFile) -> usize {
    let tokens = file.tokens();
    let mut count = 0;
    for i in 1..tokens.len() {
        if tokens[i].in_test {
            continue;
        }
        if !(tokens[i].is_ident("unwrap") || tokens[i].is_ident("expect")) {
            continue;
        }
        if tokens[i - 1].is_punct('.') && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    #[test]
    fn counts_call_sites_only() {
        let src = "
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect(\"present\");
                let c = x.unwrap_or(0);
                let d = x.unwrap_or_default();
                a + b + c + d
            }
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u32>) { x.unwrap(); }
            }
        ";
        let n = count_panic_sites(&SourceFile::new("crates/core/src/f.rs", src));
        assert_eq!(n, 2);
    }

    #[test]
    fn over_budget_errors_under_budget_notes() {
        let cfg = AnalyzeConfig::workspace_default();
        let file = SourceFile::new(
            "crates/core/src/f.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        let krate = CrateSources::new("core", vec![file]);

        // No budget declared: one site over an implicit budget of zero.
        let mut findings = Vec::new();
        let mut allow = Allowlist::default();
        run(&cfg, &krate, &mut allow, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Error);

        // A generous budget: the note invites ratcheting down.
        let mut findings = Vec::new();
        let mut allow = Allowlist::parse(
            "core",
            "panic-budget src/f.rs 5 -- legacy\n",
            &mut findings,
        );
        run(&cfg, &krate, &mut allow, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].severity, Severity::Note);

        // An exact budget: silence.
        let mut findings = Vec::new();
        let mut allow = Allowlist::parse(
            "core",
            "panic-budget src/f.rs 1 -- legacy\n",
            &mut findings,
        );
        run(&cfg, &krate, &mut allow, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
