//! Findings: what an analysis produced, and how it is rendered.

use std::fmt;

/// Which analysis produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `HashMap`/`HashSet` in a determinism-relevant crate.
    UnorderedMap,
    /// `SystemTime::now`/`Instant::now` outside the observability crates.
    WallClock,
    /// Raw `std::thread::spawn`/`thread::Builder` outside sanctioned modules.
    RawThreadSpawn,
    /// A crate missing `#![forbid(unsafe_code)]` in its `lib.rs`.
    MissingForbidUnsafe,
    /// `unwrap()`/`expect()` count above the budgeted allowlist.
    PanicBudget,
    /// Wire-format schema problems: drift vs `SCHEMA.lock`, a missing
    /// encode/decode counterpart, or encode/decode asymmetry.
    Schema,
    /// A malformed or stale `ANALYZE.allow` entry.
    Allowlist,
}

impl Lint {
    /// The lint's stable name, as used in `ANALYZE.allow` and reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnorderedMap => "unordered-map",
            Lint::WallClock => "wall-clock",
            Lint::RawThreadSpawn => "raw-thread-spawn",
            Lint::MissingForbidUnsafe => "missing-forbid-unsafe",
            Lint::PanicBudget => "panic-budget",
            Lint::Schema => "schema",
            Lint::Allowlist => "allowlist",
        }
    }

    /// Parse a lint name from an `ANALYZE.allow` entry.
    pub fn from_name(s: &str) -> Option<Lint> {
        Some(match s {
            "unordered-map" => Lint::UnorderedMap,
            "wall-clock" => Lint::WallClock,
            "raw-thread-spawn" => Lint::RawThreadSpawn,
            "missing-forbid-unsafe" => Lint::MissingForbidUnsafe,
            "panic-budget" => Lint::PanicBudget,
            "schema" => Lint::Schema,
            "allowlist" => Lint::Allowlist,
            _ => return None,
        })
    }
}

/// How severe a finding is.
///
/// * `Error` always fails `repro analyze`.
/// * `Warning` fails only under `--deny-warnings` (the CI mode).
/// * `Note` never fails; it is advice (e.g. "budget can be lowered").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only.
    Note,
    /// Fails under `--deny-warnings`.
    Warning,
    /// Always fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a lint, where it fired, and why.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The analysis that produced this finding.
    pub lint: Lint,
    /// How severe it is.
    pub severity: Severity,
    /// Workspace-relative file path (empty for workspace-level findings).
    pub file: String,
    /// 1-based line, 0 when the finding is file- or workspace-level.
    pub line: usize,
    /// Human-readable description, including the fix.
    pub message: String,
}

impl Finding {
    /// Build a finding.
    pub fn new(
        lint: Lint,
        severity: Severity,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Finding {
        Finding { lint, severity, file: file.into(), line, message: message.into() }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint.name())?;
        if !self.file.is_empty() {
            write!(f, " {}", self.file)?;
            if self.line > 0 {
                write!(f, ":{}", self.line)?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON report (the CI artifact).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.lint.name(),
            f.severity,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.iter().filter(|f| f.severity == Severity::Warning).count();
    let notes = findings.iter().filter(|f| f.severity == Severity::Note).count();
    out.push_str(&format!(
        "  ],\n  \"errors\": {errors},\n  \"warnings\": {warnings},\n  \"notes\": {notes}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_roundtrip() {
        for lint in [
            Lint::UnorderedMap,
            Lint::WallClock,
            Lint::RawThreadSpawn,
            Lint::MissingForbidUnsafe,
            Lint::PanicBudget,
            Lint::Schema,
            Lint::Allowlist,
        ] {
            assert_eq!(Lint::from_name(lint.name()), Some(lint));
        }
        assert_eq!(Lint::from_name("nonsense"), None);
    }

    #[test]
    fn display_and_json_render() {
        let f = Finding::new(
            Lint::UnorderedMap,
            Severity::Warning,
            "crates/core/src/x.rs",
            7,
            "HashMap on a \"hot\" path",
        );
        let text = f.to_string();
        assert!(text.contains("warning[unordered-map] crates/core/src/x.rs:7"), "{text}");
        let json = render_json(&[f]);
        assert!(json.contains("\\\"hot\\\""), "{json}");
        assert!(json.contains("\"warnings\": 1"), "{json}");
    }
}
