//! Source loading and the token scanner every analysis is built on.
//!
//! The scanner is deliberately not a Rust parser: it lexes a source file
//! into a flat token stream with comments stripped and string/char literals
//! collapsed into single tokens, which is exactly enough to pattern-match
//! the constructs the lints care about (`HashMap`, `Instant::now`,
//! `impl BinEncode for …`) without ever matching text inside a comment or
//! a string literal — the failure mode that makes `grep`-based gates cry
//! wolf. Test modules (`#[cfg(test)] mod … { … }`) are marked so lints can
//! skip them: test code may use unordered maps and wall clocks freely.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What kind of token this is (and its text where relevant).
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
    /// True when the token sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// Token classification. Only the distinctions the analyses need.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (integer or float), verbatim.
    Num(String),
    /// A single punctuation character.
    Punct(char),
    /// String literal (normal or raw), with its unquoted content.
    Str(String),
    /// Character literal (content dropped; never matched against).
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    /// True if this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokenKind::Punct(p) if p == c)
    }

    /// The numeric literal text, if this is a number.
    pub fn num(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Num(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TokenKind::Ident(s) | TokenKind::Num(s) => f.write_str(s),
            TokenKind::Punct(c) => write!(f, "{c}"),
            TokenKind::Str(_) => f.write_str("\"…\""),
            TokenKind::Char => f.write_str("'…'"),
            TokenKind::Lifetime => f.write_str("'_"),
        }
    }
}

/// A source file addressed relative to the workspace root.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, e.g. `crates/core/src/state.rs`.
    pub rel_path: String,
    /// The file's full text.
    pub text: String,
}

impl SourceFile {
    /// Build a source file from a path and its contents.
    pub fn new(rel_path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile { rel_path: rel_path.into(), text: text.into() }
    }

    /// Lex this file. Never fails: unterminated constructs consume to EOF.
    pub fn tokens(&self) -> Vec<Token> {
        let mut tokens = lex(&self.text);
        mark_test_regions(&mut tokens);
        tokens
    }
}

/// The sources of one crate plus its optional `ANALYZE.allow` text.
#[derive(Clone, Debug)]
pub struct CrateSources {
    /// The crate's directory name under `crates/`, e.g. `core`.
    pub name: String,
    /// All `.rs` files under the crate's `src/`.
    pub files: Vec<SourceFile>,
    /// Raw text of `crates/<name>/ANALYZE.allow`, when present.
    pub allow: Option<String>,
}

impl CrateSources {
    /// Build a crate's sources in memory (used by tests and doctests).
    pub fn new(name: impl Into<String>, files: Vec<SourceFile>) -> CrateSources {
        CrateSources { name: name.into(), files, allow: None }
    }

    /// Attach allowlist text (the contents of `ANALYZE.allow`).
    pub fn with_allow(mut self, allow: impl Into<String>) -> CrateSources {
        self.allow = Some(allow.into());
        self
    }
}

/// Every crate the analyzer will look at.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Crates in ascending name order.
    pub crates: Vec<CrateSources>,
}

impl Workspace {
    /// Build a workspace from in-memory sources (tests, doctests).
    pub fn from_sources(mut crates: Vec<CrateSources>) -> Workspace {
        crates.sort_by(|a, b| a.name.cmp(&b.name));
        Workspace { crates }
    }

    /// All files across all crates, each with its owning crate name.
    pub fn files(&self) -> impl Iterator<Item = (&str, &SourceFile)> {
        self.crates
            .iter()
            .flat_map(|c| c.files.iter().map(move |f| (c.name.as_str(), f)))
    }
}

/// Load every crate under `<root>/crates/` — all `.rs` files beneath each
/// crate's `src/` (recursively, so `src/bin/` is included) plus its
/// `ANALYZE.allow` when present. Files are sorted by path so every run
/// sees the same order.
pub fn scan_workspace(root: &Path) -> io::Result<Workspace> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory — not a workspace root", root.display()),
        ));
    }
    let mut crates = Vec::new();
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let mut files = Vec::new();
        collect_rs_files(&dir.join("src"), root, &mut files)?;
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let allow = fs::read_to_string(dir.join("ANALYZE.allow")).ok();
        crates.push(CrateSources { name, files, allow });
    }
    Ok(Workspace { crates })
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(()); // a crate without src/ contributes nothing
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile { rel_path: rel, text: fs::read_to_string(&path)? });
        }
    }
    Ok(())
}

// --------------------------------------------------------------- the lexer

fn lex(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let push = |tokens: &mut Vec<Token>, kind: TokenKind, line: usize| {
        tokens.push(Token { kind, line, in_test: false });
    };
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b'
                if is_raw_string_start(bytes, i) =>
            {
                let (content, consumed, newlines) = lex_raw_string(bytes, i);
                push(&mut tokens, TokenKind::Str(content), line);
                line += newlines;
                i += consumed;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let (content, consumed, newlines) = lex_string(bytes, i + 1);
                push(&mut tokens, TokenKind::Str(content), line);
                line += newlines;
                i += 1 + consumed;
            }
            b'"' => {
                let (content, consumed, newlines) = lex_string(bytes, i);
                push(&mut tokens, TokenKind::Str(content), line);
                line += newlines;
                i += consumed;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    // Definitely a char literal with an escape.
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    push(&mut tokens, TokenKind::Char, line);
                    i = j + 1;
                } else {
                    // Consume the identifier-ish run after the quote.
                    let start = j;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'\'') && j > start {
                        push(&mut tokens, TokenKind::Char, line);
                        i = j + 1;
                    } else if bytes.get(i + 1).is_some_and(|c| !c.is_ascii_alphanumeric() && *c != b'_') && bytes.get(i + 2) == Some(&b'\'') {
                        // 'x' where x is punctuation, e.g. '\''-free "','"
                        push(&mut tokens, TokenKind::Char, line);
                        i += 3;
                    } else {
                        push(&mut tokens, TokenKind::Lifetime, line);
                        i = j;
                    }
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                push(&mut tokens, TokenKind::Ident(text), line);
            }
            b if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // `0..n` range: stop before a second consecutive dot.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                push(&mut tokens, TokenKind::Num(text), line);
            }
            _ => {
                // Multi-byte UTF-8 punctuation is irrelevant to every lint;
                // consume the full code point but record only ASCII.
                let ch = text[i..].chars().next().unwrap_or('\u{fffd}');
                push(&mut tokens, TokenKind::Punct(if ch.is_ascii() { ch } else { '\u{fffd}' }), line);
                i += ch.len_utf8();
            }
        }
    }
    tokens
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  br#"..."#
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn lex_raw_string(bytes: &[u8], start: usize) -> (String, usize, usize) {
    let mut j = start;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let content_start = j;
    let mut newlines = 0;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                let content =
                    String::from_utf8_lossy(&bytes[content_start..j]).into_owned();
                return (content, k - start, newlines);
            }
        }
        j += 1;
    }
    (String::from_utf8_lossy(&bytes[content_start..]).into_owned(), bytes.len() - start, newlines)
}

fn lex_string(bytes: &[u8], start: usize) -> (String, usize, usize) {
    // `start` points at the opening quote. Returns (content, consumed, newlines).
    let mut j = start + 1;
    let mut newlines = 0;
    let content_start = j;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => {
                let content =
                    String::from_utf8_lossy(&bytes[content_start..j]).into_owned();
                return (content, j + 1 - start, newlines);
            }
            _ => j += 1,
        }
    }
    (String::from_utf8_lossy(&bytes[content_start..]).into_owned(), bytes.len() - start, newlines)
}

/// Mark every token inside a `#[cfg(test)]`-gated item (normally the
/// `mod tests { … }` block) with `in_test = true`.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip past the attribute's closing `]`, then mark the
            // following item's braced body.
            let mut j = i;
            while j < tokens.len() && !tokens[j].is_punct(']') {
                j += 1;
            }
            j += 1;
            // Find the item's opening brace (skipping e.g. `mod tests`,
            // `fn foo()` headers) at angle/paren depth 0.
            while j < tokens.len() && !tokens[j].is_punct('{') {
                if tokens[j].is_punct(';') {
                    // `#[cfg(test)] mod tests;` — body is another file,
                    // which lives under src/ and is scanned on its own.
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let mut depth = 0;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            tokens[j].in_test = true;
                            break;
                        }
                    }
                    tokens[j].in_test = true;
                    j += 1;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    // `# [ cfg ( test ) ]` — exact sequence, any line.
    tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
        && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        SourceFile::new("t.rs", src)
            .tokens()
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_idents() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
            let c = 'H';
            fn real() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn string_contents_are_retained_on_the_token() {
        let toks = SourceFile::new("t.rs", "let h = \"WEBEVO-WAL 2\";").tokens();
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Str(s) if s == "WEBEVO-WAL 2")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = SourceFile::new("t.rs", "fn f<'a>(x: &'a str) -> &'a str { x }").tokens();
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = SourceFile::new("t.rs", "a\nb\n  c").tokens();
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn live2() {}
        ";
        let toks = SourceFile::new("t.rs", src).tokens();
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let live2 = toks.iter().find(|t| t.is_ident("live2")).unwrap();
        assert!(!live2.in_test, "tokens after the test module are live again");
    }
}
