//! `ANALYZE.allow` — the per-crate allowlist.
//!
//! Every exemption from a determinism lint, and every panic budget, lives in
//! a `crates/<name>/ANALYZE.allow` file next to the crate's `Cargo.toml`, so
//! exemptions are reviewed in the same diff as the code they justify. The
//! format is one entry per line:
//!
//! ```text
//! # comment
//! wall-clock src/query.rs -- latency histograms are observability-only
//! raw-thread-spawn src/checkpoint.rs -- sanctioned off-thread snapshot encoder
//! panic-budget src/codec.rs 12 -- decode invariants checked by the header
//! ```
//!
//! Paths are crate-relative (`src/…`). A justification after ` -- ` is
//! mandatory: an allowlist entry without a reason is itself a finding.

use crate::report::{Finding, Lint, Severity};

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq)]
pub struct AllowEntry {
    /// Which lint is exempted.
    pub lint: Lint,
    /// Crate-relative path, e.g. `src/query.rs`.
    pub path: String,
    /// Panic budget (only for `panic-budget` entries).
    pub budget: Option<usize>,
    /// The mandatory justification.
    pub why: String,
    /// 1-based line in the `ANALYZE.allow` file.
    pub line: usize,
}

/// A crate's parsed allowlist, plus usage tracking so stale entries can be
/// reported: an exemption nothing relies on any more should be deleted, not
/// left to mask a future regression.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Parsed entries in file order.
    pub entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parse the text of an `ANALYZE.allow` file. Malformed lines become
    /// `allowlist` findings (errors) rather than silent exemptions.
    pub fn parse(crate_name: &str, text: &str, findings: &mut Vec<Finding>) -> Allowlist {
        let file = format!("crates/{crate_name}/ANALYZE.allow");
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, why) = match line.split_once(" -- ") {
                Some((h, w)) if !w.trim().is_empty() => (h.trim(), w.trim().to_string()),
                _ => {
                    findings.push(Finding::new(
                        Lint::Allowlist,
                        Severity::Error,
                        &file,
                        line_no,
                        "allowlist entry is missing its ` -- justification`",
                    ));
                    continue;
                }
            };
            let mut parts = head.split_whitespace();
            let lint = match parts.next().and_then(Lint::from_name) {
                Some(l) => l,
                None => {
                    findings.push(Finding::new(
                        Lint::Allowlist,
                        Severity::Error,
                        &file,
                        line_no,
                        format!("unknown lint name in allowlist entry: `{head}`"),
                    ));
                    continue;
                }
            };
            let Some(path) = parts.next() else {
                findings.push(Finding::new(
                    Lint::Allowlist,
                    Severity::Error,
                    &file,
                    line_no,
                    format!("allowlist entry for `{}` is missing a path", lint.name()),
                ));
                continue;
            };
            let budget = if lint == Lint::PanicBudget {
                match parts.next().and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => Some(n),
                    None => {
                        findings.push(Finding::new(
                            Lint::Allowlist,
                            Severity::Error,
                            &file,
                            line_no,
                            "panic-budget entry needs `panic-budget <path> <count>`",
                        ));
                        continue;
                    }
                }
            } else {
                None
            };
            if parts.next().is_some() {
                findings.push(Finding::new(
                    Lint::Allowlist,
                    Severity::Error,
                    &file,
                    line_no,
                    format!("trailing tokens in allowlist entry: `{head}`"),
                ));
                continue;
            }
            entries.push(AllowEntry {
                lint,
                path: path.to_string(),
                budget,
                why,
                line: line_no,
            });
        }
        let used = vec![false; entries.len()];
        Allowlist { entries, used }
    }

    /// True when `lint` is exempted for the crate-relative `path`; marks the
    /// entry used.
    pub fn permits(&mut self, lint: Lint, path: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.lint == lint && e.budget.is_none() && e.path == path {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// The panic budget for a crate-relative `path`, if one is declared;
    /// marks the entry used.
    pub fn panic_budget(&mut self, path: &str) -> Option<usize> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.lint == Lint::PanicBudget && e.path == path {
                self.used[i] = true;
                return e.budget;
            }
        }
        None
    }

    /// Report entries nothing consulted — stale exemptions that should be
    /// deleted so they can't mask a future regression.
    pub fn report_stale(&self, crate_name: &str, findings: &mut Vec<Finding>) {
        let file = format!("crates/{crate_name}/ANALYZE.allow");
        for (i, e) in self.entries.iter().enumerate() {
            if !self.used[i] {
                findings.push(Finding::new(
                    Lint::Allowlist,
                    Severity::Warning,
                    &file,
                    e.line,
                    format!(
                        "stale allowlist entry: `{} {}` matched nothing — delete it",
                        e.lint.name(),
                        e.path
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_budgets() {
        let text = "\
# comment

wall-clock src/query.rs -- histograms only
panic-budget src/codec.rs 12 -- header-checked
";
        let mut findings = Vec::new();
        let mut a = Allowlist::parse("serve", text, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(a.entries.len(), 2);
        assert!(a.permits(Lint::WallClock, "src/query.rs"));
        assert!(!a.permits(Lint::WallClock, "src/other.rs"));
        assert_eq!(a.panic_budget("src/codec.rs"), Some(12));
        assert_eq!(a.panic_budget("src/wal.rs"), None);
    }

    #[test]
    fn malformed_lines_become_findings() {
        let cases = [
            "wall-clock src/query.rs",                    // no justification
            "bogus-lint src/x.rs -- why",                 // unknown lint
            "wall-clock -- why",                          // no path
            "panic-budget src/x.rs -- why",               // no count
            "wall-clock src/x.rs extra -- why",           // trailing tokens
        ];
        for case in cases {
            let mut findings = Vec::new();
            let a = Allowlist::parse("core", case, &mut findings);
            assert!(a.entries.is_empty(), "{case}");
            assert_eq!(findings.len(), 1, "{case}: {findings:?}");
            assert_eq!(findings[0].severity, Severity::Error);
        }
    }

    #[test]
    fn unused_entries_are_stale() {
        let mut findings = Vec::new();
        let mut a = Allowlist::parse(
            "core",
            "wall-clock src/a.rs -- x\nwall-clock src/b.rs -- y\n",
            &mut findings,
        );
        assert!(a.permits(Lint::WallClock, "src/a.rs"));
        a.report_stale("core", &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("src/b.rs"), "{findings:?}");
    }
}
