//! Determinism lints over the token stream.
//!
//! The engine's reproducibility story (byte-identical snapshots, replayable
//! WALs, deterministic experiment tables) rests on iteration order being a
//! function of the data, never of hasher seeds, wall clocks, or thread
//! interleavings. These lints catch the three ways that property usually
//! erodes: an unordered map sneaking onto a serialized or replayed path, a
//! wall-clock read feeding engine state, and an unsanctioned thread.

use crate::allow::Allowlist;
use crate::report::{Finding, Lint, Severity};
use crate::scan::{CrateSources, Token};
use crate::AnalyzeConfig;

/// Run every determinism lint over one crate.
pub fn run(
    config: &AnalyzeConfig,
    krate: &CrateSources,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) {
    let map_strict = config.map_strict_crates.iter().any(|c| c == &krate.name);
    let clock_free = !config.clock_exempt_crates.iter().any(|c| c == &krate.name);
    for file in &krate.files {
        let crate_rel = crate_relative(&file.rel_path, &krate.name);
        let tokens = file.tokens();
        for (i, tok) in tokens.iter().enumerate() {
            if tok.in_test {
                continue; // test modules may hash and sleep freely
            }
            if map_strict {
                lint_unordered_map(&file.rel_path, &crate_rel, tok, allow, findings);
            }
            if clock_free {
                lint_wall_clock(&file.rel_path, &crate_rel, &tokens, i, allow, findings);
            }
            lint_thread_spawn(&file.rel_path, &crate_rel, &tokens, i, allow, findings);
        }
    }
    lint_forbid_unsafe(krate, findings);
}

/// `crates/<name>/src/foo.rs` → `src/foo.rs` (the form allowlists use).
fn crate_relative(rel_path: &str, crate_name: &str) -> String {
    let prefix = format!("crates/{crate_name}/");
    rel_path.strip_prefix(&prefix).unwrap_or(rel_path).to_string()
}

fn lint_unordered_map(
    file: &str,
    crate_rel: &str,
    tok: &Token,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) {
    let Some(name) = tok.ident() else { return };
    if name != "HashMap" && name != "HashSet" {
        return;
    }
    if allow.permits(Lint::UnorderedMap, crate_rel) {
        return;
    }
    findings.push(Finding::new(
        Lint::UnorderedMap,
        Severity::Warning,
        file,
        tok.line,
        format!(
            "`{name}` in a determinism-relevant crate: iteration order depends on \
             the hasher seed. Use `DenseMap`/`DenseSet` for PageId-keyed data or \
             `BTreeMap`/`BTreeSet` otherwise, or add an `unordered-map` entry to \
             ANALYZE.allow with a justification"
        ),
    ));
}

fn lint_wall_clock(
    file: &str,
    crate_rel: &str,
    tokens: &[Token],
    i: usize,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) {
    // `SystemTime :: now` / `Instant :: now`
    let Some(ty) = tokens[i].ident() else { return };
    if ty != "SystemTime" && ty != "Instant" {
        return;
    }
    let is_now_call = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"));
    if !is_now_call {
        return;
    }
    if allow.permits(Lint::WallClock, crate_rel) {
        return;
    }
    let line = tokens[i].line;
    findings.push(Finding::new(
        Lint::WallClock,
        Severity::Warning,
        file,
        line,
        format!(
            "`{ty}::now()` outside the observability crates: wall-clock reads make \
             runs irreproducible. Thread the simulated clock through instead, or \
             add a `wall-clock` entry to ANALYZE.allow with a justification"
        ),
    ));
}

fn lint_thread_spawn(
    file: &str,
    crate_rel: &str,
    tokens: &[Token],
    i: usize,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) {
    // `thread :: spawn` or `thread :: Builder` — `std::thread` or a bare
    // `use std::thread;` import, either way the path ends the same.
    if !tokens[i].is_ident("thread") {
        return;
    }
    let is_spawn = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens
            .get(i + 3)
            .is_some_and(|t| t.is_ident("spawn") || t.is_ident("Builder"));
    if !is_spawn {
        return;
    }
    if allow.permits(Lint::RawThreadSpawn, crate_rel) {
        return;
    }
    findings.push(Finding::new(
        Lint::RawThreadSpawn,
        Severity::Warning,
        file,
        tokens[i].line,
        "raw `thread::spawn` outside a sanctioned module: unmanaged threads \
         introduce scheduling nondeterminism. Route work through the fleet \
         coordinator or checkpointer, or add a `raw-thread-spawn` entry to \
         ANALYZE.allow with a justification",
    ));
}

/// Every crate's `lib.rs` (or sole `main.rs`) must carry
/// `#![forbid(unsafe_code)]`.
fn lint_forbid_unsafe(krate: &CrateSources, findings: &mut Vec<Finding>) {
    let root = krate
        .files
        .iter()
        .find(|f| f.rel_path.ends_with("/src/lib.rs"))
        .or_else(|| krate.files.iter().find(|f| f.rel_path.ends_with("/src/main.rs")));
    let Some(root) = root else {
        return; // a crate with no root source contributes nothing
    };
    let tokens = root.tokens();
    // `# ! [ forbid ( unsafe_code ) ]`
    let has = tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !has {
        findings.push(Finding::new(
            Lint::MissingForbidUnsafe,
            Severity::Error,
            &root.rel_path,
            1,
            "crate root is missing `#![forbid(unsafe_code)]` — the workspace is \
             unsafe-free by policy",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{SourceFile, Workspace};
    use crate::{analyze, AnalyzeConfig};

    fn one_crate(name: &str, body: &str, allow: Option<&str>) -> Workspace {
        let file = SourceFile::new(
            format!("crates/{name}/src/lib.rs"),
            format!("#![forbid(unsafe_code)]\n{body}"),
        );
        let mut c = CrateSources::new(name, vec![file]);
        if let Some(a) = allow {
            c = c.with_allow(a);
        }
        Workspace::from_sources(vec![c])
    }

    fn findings_for(ws: &Workspace) -> Vec<Finding> {
        analyze(ws, &AnalyzeConfig::workspace_default(), None)
    }

    #[test]
    fn hashmap_in_strict_crate_fires() {
        let ws = one_crate("core", "use std::collections::HashMap;", None);
        let f = findings_for(&ws);
        assert!(f.iter().any(|f| f.lint == Lint::UnorderedMap), "{f:?}");
    }

    #[test]
    fn hashmap_in_lax_crate_is_fine() {
        let ws = one_crate("obs", "use std::collections::HashMap;", None);
        let f = findings_for(&ws);
        assert!(!f.iter().any(|f| f.lint == Lint::UnorderedMap), "{f:?}");
    }

    #[test]
    fn hashmap_in_test_module_is_fine() {
        let ws = one_crate(
            "core",
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; }",
            None,
        );
        let f = findings_for(&ws);
        assert!(!f.iter().any(|f| f.lint == Lint::UnorderedMap), "{f:?}");
    }

    #[test]
    fn allowlisted_hashmap_is_fine_and_not_stale() {
        let ws = one_crate(
            "core",
            "use std::collections::HashMap;",
            Some("unordered-map src/lib.rs -- interned, never iterated\n"),
        );
        let f = findings_for(&ws);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_fires_outside_obs() {
        let ws = one_crate("serve", "fn f() { let t = Instant::now(); }", None);
        let f = findings_for(&ws);
        assert!(f.iter().any(|f| f.lint == Lint::WallClock), "{f:?}");
        let ws = one_crate("obs", "fn f() { let t = Instant::now(); }", None);
        assert!(findings_for(&ws).is_empty());
    }

    #[test]
    fn thread_spawn_fires_everywhere_unless_allowed() {
        let body = "fn f() { std::thread::spawn(|| {}); }";
        let ws = one_crate("obs", body, None);
        let f = findings_for(&ws);
        assert!(f.iter().any(|f| f.lint == Lint::RawThreadSpawn), "{f:?}");
        let ws = one_crate("obs", body, Some("raw-thread-spawn src/lib.rs -- sanctioned\n"));
        assert!(findings_for(&ws).is_empty());
    }

    #[test]
    fn missing_forbid_unsafe_is_an_error() {
        let file = SourceFile::new("crates/x/src/lib.rs", "fn f() {}");
        let ws = Workspace::from_sources(vec![CrateSources::new("x", vec![file])]);
        let f = findings_for(&ws);
        assert!(
            f.iter()
                .any(|f| f.lint == Lint::MissingForbidUnsafe && f.severity == Severity::Error),
            "{f:?}"
        );
    }
}
