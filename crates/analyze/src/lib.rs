//! Static-analysis gate for the webevo workspace.
//!
//! The reproduction's headline guarantees — byte-identical snapshots,
//! WAL replay determinism, cross-engine comparability — are properties of
//! the *source*, not of any single test run: one `HashMap` iteration on a
//! serialized path, one `Instant::now()` feeding engine state, or one
//! silent field reorder in a `BinEncode` impl breaks them in ways tests
//! only catch probabilistically. This crate makes those properties
//! checkable on every commit, with three analyses over a hand-rolled token
//! scanner (no `syn`, no dependencies — the gate builds offline):
//!
//! * **Determinism lints** ([`lints`]) — unordered maps in
//!   determinism-relevant crates, wall-clock reads outside observability
//!   code, raw `thread::spawn` outside sanctioned modules, and a missing
//!   `#![forbid(unsafe_code)]`. Exemptions live in per-crate
//!   `ANALYZE.allow` files ([`allow`]) and every exemption needs a written
//!   justification; stale exemptions are themselves findings.
//! * **Wire-format schema** ([`schema`]) — every `BinEncode`/`BinDecode`
//!   impl is parsed into its ordered field-write/read sequence, checked for
//!   encode/decode symmetry, and pinned in `SCHEMA.lock` keyed to the
//!   snapshot/WAL container versions, so no layout change lands unreviewed.
//! * **Panic-path audit** ([`panics`]) — `unwrap()`/`expect()` counts in
//!   the durability crates against budgets that can only ratchet down.
//!
//! Run it as `repro analyze` (add `--deny-warnings` for the CI gate).
//!
//! # Example
//!
//! ```
//! use webevo_analyze::{analyze, AnalyzeConfig, Lint};
//! use webevo_analyze::scan::{CrateSources, SourceFile, Workspace};
//!
//! // A determinism-relevant crate that snuck a HashMap in:
//! let file = SourceFile::new(
//!     "crates/core/src/frontier.rs",
//!     "use std::collections::HashMap;\nfn f() {}\n",
//! );
//! let lib = SourceFile::new("crates/core/src/lib.rs", "#![forbid(unsafe_code)]");
//! let ws = Workspace::from_sources(vec![CrateSources::new("core", vec![file, lib])]);
//!
//! let findings = analyze(&ws, &AnalyzeConfig::workspace_default(), None);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].lint, Lint::UnorderedMap);
//! assert!(findings[0].file.contains("frontier.rs"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod lints;
pub mod panics;
pub mod report;
pub mod scan;
pub mod schema;

pub use report::{render_json, Finding, Lint, Severity};
pub use scan::{scan_workspace, Workspace};

use allow::Allowlist;

/// Which crates each analysis applies to. Crate names are the directory
/// names under `crates/`.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Crates where `HashMap`/`HashSet` are flagged: everything whose state
    /// is serialized, replayed, or feeds deterministic outputs.
    pub map_strict_crates: Vec<String>,
    /// Crates allowed to read wall clocks (observability and benchmarks).
    pub clock_exempt_crates: Vec<String>,
    /// Crates whose `unwrap()`/`expect()` counts are budgeted.
    pub panic_budget_crates: Vec<String>,
}

impl AnalyzeConfig {
    /// The policy for this workspace.
    ///
    /// * Map-strict: `types`, `core`, `store`, `sim`, `estimate`, `graph` —
    ///   the crates whose data structures end up in snapshots, WAL replay,
    ///   or experiment tables.
    /// * Clock-exempt: `obs` (its whole job is wall-clock timing) and
    ///   `bench` (measures real elapsed time).
    /// * Panic-budgeted: `core` and `store`, the snapshot/WAL path.
    pub fn workspace_default() -> AnalyzeConfig {
        let v = |names: &[&str]| names.iter().map(|s| s.to_string()).collect();
        AnalyzeConfig {
            map_strict_crates: v(&["types", "core", "store", "sim", "estimate", "graph"]),
            clock_exempt_crates: v(&["obs", "bench"]),
            panic_budget_crates: v(&["core", "store"]),
        }
    }
}

/// Run every analysis over a workspace. `schema_lock` is the contents of
/// `SCHEMA.lock` when the file exists; pass `None` for in-memory
/// workspaces without a lock (the schema gate then only fires if the
/// workspace defines wire impls).
///
/// Findings come back sorted by file, line, then lint.
pub fn analyze(ws: &Workspace, config: &AnalyzeConfig, schema_lock: Option<&str>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in &ws.crates {
        let mut allowlist = match &krate.allow {
            Some(text) => Allowlist::parse(&krate.name, text, &mut findings),
            None => Allowlist::default(),
        };
        lints::run(config, krate, &mut allowlist, &mut findings);
        panics::run(config, krate, &mut allowlist, &mut findings);
        allowlist.report_stale(&krate.name, &mut findings);
    }
    schema::check(ws, schema_lock, &mut findings);
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.lint.cmp(&b.lint))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan::{CrateSources, SourceFile, Workspace};

    #[test]
    fn clean_workspace_has_no_findings() {
        let lib = SourceFile::new(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\nuse std::collections::BTreeMap;\nfn f() {}\n",
        );
        let ws = Workspace::from_sources(vec![CrateSources::new("core", vec![lib])]);
        let findings = analyze(&ws, &AnalyzeConfig::workspace_default(), None);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn findings_are_sorted_by_location() {
        let a = SourceFile::new(
            "crates/core/src/a.rs",
            "use std::collections::HashMap;\nuse std::collections::HashSet;\n",
        );
        let lib = SourceFile::new("crates/core/src/lib.rs", "#![forbid(unsafe_code)]");
        let ws = Workspace::from_sources(vec![CrateSources::new("core", vec![a, lib])]);
        let findings = analyze(&ws, &AnalyzeConfig::workspace_default(), None);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].line < findings[1].line);
    }
}
