//! Wire-format schema extraction and the `SCHEMA.lock` drift gate.
//!
//! Every `impl BinEncode`/`impl BinDecode` block in the workspace is parsed
//! into an ordered sequence of wire operations — the order fields are
//! written is the byte layout, because the format has no field tags. Three
//! checks follow:
//!
//! 1. **Symmetry** — for struct-shaped pairs, the decode field order must
//!    equal the encode field order; for enum-shaped pairs, the tag sets and
//!    per-tag operand counts must agree. A type encoded but never decoded
//!    (or vice versa) is also an error.
//! 2. **Lock drift** — the canonical schema is rendered to `SCHEMA.lock`,
//!    keyed to the `SNAPSHOT_VERSION`/`WAL_HEADER` container versions. Any
//!    reorder, addition, or removal changes the rendering and fails the
//!    gate until the lock is regenerated (and, when the byte layout really
//!    changed, the container version bumped) — so no layout change can land
//!    unreviewed.
//! 3. Types whose impls don't follow the struct or enum idiom (primitives,
//!    generic containers) are recorded as opaque op sequences; the lock
//!    still covers them even though symmetry can't be judged by name.

use crate::report::{Finding, Lint, Severity};
use crate::scan::{Token, TokenKind, Workspace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One wire operation on the encode side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A single tag/marker byte (`out.push(…)`).
    Tag,
    /// A LEB128 varint (`put_var_u64`).
    Varint,
    /// Raw bytes (`out.extend_from_slice`).
    Raw,
    /// A nested `bin_encode`/`bin_decode`.
    Sub,
    /// A local helper function that writes to `out` / reads from `r`.
    Helper,
}

impl OpKind {
    fn word(self) -> &'static str {
        match self {
            OpKind::Tag => "tag",
            OpKind::Varint => "varint",
            OpKind::Raw => "raw",
            OpKind::Sub => "sub",
            OpKind::Helper => "help",
        }
    }
}

/// One enum arm: variant name, tag literal, and operand count.
#[derive(Clone, Debug, PartialEq)]
pub struct Arm {
    /// Variant name (may be empty on the decode side).
    pub name: String,
    /// The tag byte literal, verbatim.
    pub tag: String,
    /// How many nested encode/decode calls follow the tag.
    pub subops: usize,
}

/// The extracted wire shape of one impl.
#[derive(Clone, Debug, PartialEq)]
pub enum Shape {
    /// Every operation maps to a named field, in declaration order.
    Struct(Vec<String>),
    /// Tag-dispatched enum arms.
    Enum(Vec<Arm>),
    /// Anything else: the raw op sequence (primitives, containers).
    Ops(Vec<OpKind>),
}

/// One `impl BinEncode`/`BinDecode` block, located and shaped.
#[derive(Clone, Debug)]
pub struct ImplInfo {
    /// `<crate>::<Type>`, the lock key.
    pub key: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// The extracted shape.
    pub shape: Shape,
}

/// Both sides of a type's wire format.
#[derive(Clone, Debug, Default)]
pub struct TypeSchema {
    /// The `BinEncode` side, when present.
    pub encode: Option<ImplInfo>,
    /// The `BinDecode` side, when present.
    pub decode: Option<ImplInfo>,
}

/// Extract every `BinEncode`/`BinDecode` impl in the workspace, keyed by
/// `<crate>::<Type>`.
pub fn extract(ws: &Workspace) -> BTreeMap<String, TypeSchema> {
    let mut types: BTreeMap<String, TypeSchema> = BTreeMap::new();
    for (crate_name, file) in ws.files() {
        let tokens = file.tokens();
        let mut i = 0;
        while i < tokens.len() {
            match find_impl(&tokens, i) {
                Some(found) => {
                    let key = format!("{crate_name}::{}", found.type_name);
                    let info = ImplInfo {
                        key: key.clone(),
                        file: file.rel_path.clone(),
                        line: tokens[i].line,
                        shape: found.shape,
                    };
                    let entry = types.entry(key).or_default();
                    if found.is_encode {
                        entry.encode = Some(info);
                    } else {
                        entry.decode = Some(info);
                    }
                    i = found.end;
                }
                None => i += 1,
            }
        }
    }
    types
}

struct FoundImpl {
    type_name: String,
    is_encode: bool,
    shape: Shape,
    end: usize,
}

/// Try to parse an `impl … Bin{En,De}code for Type { … }` starting at `i`
/// (which must point at the `impl` keyword for a match).
fn find_impl(tokens: &[Token], i: usize) -> Option<FoundImpl> {
    if !tokens[i].is_ident("impl") || tokens[i].in_test {
        return None;
    }
    let mut j = i + 1;
    // Skip `<…>` generic parameters (angle brackets only ever nest here).
    if tokens.get(j)?.is_punct('<') {
        let mut depth = 0;
        while j < tokens.len() {
            if tokens[j].is_punct('<') {
                depth += 1;
            } else if tokens[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Trait path: idents and `::` until the `for` keyword.
    let mut trait_last = String::new();
    while j < tokens.len() {
        if tokens[j].is_ident("for") {
            break;
        }
        match &tokens[j].kind {
            TokenKind::Ident(s) => trait_last = s.clone(),
            TokenKind::Punct(':') => {}
            _ => return None, // not a plain trait path — an inherent impl etc.
        }
        j += 1;
    }
    let is_encode = match trait_last.as_str() {
        "BinEncode" => true,
        "BinDecode" => false,
        _ => return None,
    };
    j += 1; // past `for`
    // Type tokens until the impl body brace.
    let mut type_name = String::new();
    while j < tokens.len() && !tokens[j].is_punct('{') {
        match &tokens[j].kind {
            TokenKind::Ident(s) | TokenKind::Num(s) => type_name.push_str(s),
            TokenKind::Punct(c) => type_name.push(*c),
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    // The impl body: `{ … }` balanced.
    let body_start = j;
    let mut depth = 0;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let body = fn_body(&tokens[body_start..=j.min(tokens.len() - 1)]);
    let shape = if is_encode { encode_shape(body) } else { decode_shape(body) };
    Some(FoundImpl { type_name, is_encode, shape, end: j + 1 })
}

/// Skip the `fn name(args) -> Ret` header inside an impl body and return
/// the function's statement tokens.
fn fn_body(body: &[Token]) -> &[Token] {
    let mut i = 0;
    while i < body.len() && !body[i].is_ident("fn") {
        i += 1;
    }
    // Past the signature's parens…
    while i < body.len() && !body[i].is_punct('(') {
        i += 1;
    }
    let mut depth = 0;
    while i < body.len() {
        if body[i].is_punct('(') {
            depth += 1;
        } else if body[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        }
        i += 1;
    }
    // …and anything up to the function's opening brace.
    while i < body.len() && !body[i].is_punct('{') {
        i += 1;
    }
    let start = (i + 1).min(body.len());
    let mut end = start;
    let mut depth = 1;
    let mut k = start;
    while k < body.len() {
        if body[k].is_punct('{') {
            depth += 1;
        } else if body[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                end = k;
                break;
            }
        }
        k += 1;
    }
    &body[start..end]
}

/// Length of the balanced group starting at the opening delimiter `open`.
fn balanced(tokens: &[Token], start: usize, open: char, close: char) -> usize {
    let mut depth = 0;
    let mut i = start;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1 - start;
            }
        }
        i += 1;
    }
    tokens.len() - start
}

/// First `self.FIELD` (where `FIELD` isn't itself a call) in `args`.
fn self_field(args: &[Token]) -> Option<String> {
    for i in 0..args.len() {
        if args[i].is_ident("self")
            && args.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && !args.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            match args.get(i + 2).map(|t| &t.kind) {
                Some(TokenKind::Ident(s)) | Some(TokenKind::Num(s)) => return Some(s.clone()),
                _ => {}
            }
        }
    }
    None
}

const KEYWORDS: &[&str] =
    &["if", "for", "while", "loop", "match", "return", "let", "Some", "Ok", "Err"];

fn encode_shape(body: &[Token]) -> Shape {
    let mut ops: Vec<(OpKind, Option<String>)> = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        // `match self { … }` — the enum idiom.
        if t.is_ident("match") && body.get(i + 1).is_some_and(|t| t.is_ident("self")) {
            let mut k = i + 2;
            while k < body.len() && !body[k].is_punct('{') {
                k += 1;
            }
            let len = balanced(body, k, '{', '}');
            return Shape::Enum(encode_arms(&body[k + 1..(k + len).saturating_sub(1)]));
        }
        // `out.push(…)` — a tag byte, or the whole-enum `push(match self …)`.
        if t.is_ident("out")
            && body.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && body.get(i + 2).is_some_and(|t| t.is_ident("push") || t.is_ident("extend_from_slice"))
            && body.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            let raw = body[i + 2].is_ident("extend_from_slice");
            let len = balanced(body, i + 3, '(', ')');
            let args = &body[i + 4..(i + 3 + len).saturating_sub(1)];
            if !raw && args.first().is_some_and(|t| t.is_ident("match")) {
                let mut k = 0;
                while k < args.len() && !args[k].is_punct('{') {
                    k += 1;
                }
                let alen = balanced(args, k, '{', '}');
                return Shape::Enum(encode_arms(&args[k + 1..(k + alen).saturating_sub(1)]));
            }
            let kind = if raw { OpKind::Raw } else { OpKind::Tag };
            ops.push((kind, self_field(args)));
            i += 3 + len;
            continue;
        }
        // `put_var_u64(out, …)` — a varint.
        if t.is_ident("put_var_u64") && body.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let len = balanced(body, i + 1, '(', ')');
            let args = &body[i + 2..(i + 1 + len).saturating_sub(1)];
            ops.push((OpKind::Varint, self_field(args)));
            i += 1 + len;
            continue;
        }
        // `RECEIVER.bin_encode(out)` — name the receiver when it's `self.X`.
        if t.is_ident("bin_encode")
            && i >= 1
            && body[i - 1].is_punct('.')
            && body.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let name = if i >= 3
                && body[i - 2]
                    .ident()
                    .map(|_| true)
                    .unwrap_or(matches!(body[i - 2].kind, TokenKind::Num(_)))
                && body[i - 3].is_punct('.')
                && i >= 4
                && body[i - 4].is_ident("self")
            {
                match &body[i - 2].kind {
                    TokenKind::Ident(s) | TokenKind::Num(s) => Some(s.clone()),
                    _ => None,
                }
            } else {
                None
            };
            let len = balanced(body, i + 1, '(', ')');
            ops.push((OpKind::Sub, name));
            i += 1 + len;
            continue;
        }
        // `helper(&self.x, out)` — any other call that writes to `out`.
        if let TokenKind::Ident(name) = &t.kind {
            if body.get(i + 1).is_some_and(|t| t.is_punct('('))
                && !KEYWORDS.contains(&name.as_str())
                && !(i >= 1 && (body[i - 1].is_punct('.') || body[i - 1].is_punct(':')))
            {
                let len = balanced(body, i + 1, '(', ')');
                let args = &body[i + 2..(i + 1 + len).saturating_sub(1)];
                if args.iter().any(|t| t.is_ident("out")) {
                    ops.push((OpKind::Helper, self_field(args)));
                    i += 1 + len;
                    continue;
                }
                i += 1 + len;
                continue;
            }
        }
        i += 1;
    }
    if !ops.is_empty() && ops.iter().all(|(_, n)| n.is_some()) {
        Shape::Struct(ops.into_iter().map(|(_, n)| n.unwrap_or_default()).collect())
    } else {
        Shape::Ops(ops.into_iter().map(|(k, _)| k).collect())
    }
}

/// Parse the arms of an encode-side `match self` body.
fn encode_arms(body: &[Token]) -> Vec<Arm> {
    let mut arms = Vec::new();
    for (pattern, arm_body) in split_arms(body) {
        let name = pattern_name(pattern);
        // Tag: an `out.push(N)` in the body (idiom A), or the body being the
        // bare literal (idiom B: `out.push(match self { … => N })`).
        let tag = find_push_literal(arm_body)
            .or_else(|| match arm_body {
                [t] => t.num().map(str::to_string),
                _ => None,
            })
            .unwrap_or_else(|| "?".to_string());
        let subops = arm_body.iter().filter(|t| t.is_ident("bin_encode")).count();
        arms.push(Arm { name, tag, subops });
    }
    arms
}

/// Parse a decode-side impl body into its shape.
fn decode_shape(body: &[Token]) -> Shape {
    // `match r.byte()? { … }` — the enum idiom.
    for i in 0..body.len() {
        if body[i].is_ident("match")
            && body.get(i + 1).is_some_and(|t| t.is_ident("r"))
            && body.get(i + 2).is_some_and(|t| t.is_punct('.'))
            && body.get(i + 3).is_some_and(|t| t.is_ident("byte"))
        {
            let mut k = i + 4;
            while k < body.len() && !body[k].is_punct('{') {
                k += 1;
            }
            let len = balanced(body, k, '{', '}');
            let inner = &body[k + 1..(k + len).saturating_sub(1)];
            let mut arms = Vec::new();
            for (pattern, arm_body) in split_arms(inner) {
                // Only literal-tag arms participate; `other =>` is the
                // catchall error arm.
                let tag = match pattern {
                    [t] => match t.num() {
                        Some(n) => n.to_string(),
                        None => continue,
                    },
                    _ => continue,
                };
                let subops = arm_body.iter().filter(|t| t.is_ident("bin_decode")).count();
                arms.push(Arm { name: String::new(), tag, subops });
            }
            return Shape::Enum(arms);
        }
    }
    // Struct idiom: ordered reads from `let x = …r…;` statements and the
    // keys of the returned `Ok(Type { key: …r…, … })` literal.
    let mut reads: Vec<String> = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i].is_ident("let") {
            let mut k = i + 1;
            if body.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(TokenKind::Ident(name)) = body.get(k).map(|t| &t.kind) else {
                i += 1;
                continue;
            };
            let name = name.clone();
            // RHS runs to the statement's `;` at delimiter depth 0.
            let mut depth = 0i32;
            let mut end = k;
            while end < body.len() {
                match &body[end].kind {
                    TokenKind::Punct('(' | '[' | '{') => depth += 1,
                    TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                    TokenKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            if body[k..end].iter().any(|t| t.is_ident("r")) {
                reads.push(name);
            }
            i = end + 1;
            continue;
        }
        // `Ok ( Path { key: value, … } )`
        if body[i].is_ident("Ok") && body.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let mut k = i + 2;
            // A path of idents/`::` must lead directly to `{` for this to be
            // a struct literal (and not `Ok(f64::from_bits(…))`).
            let mut is_literal = false;
            while k < body.len() {
                match &body[k].kind {
                    TokenKind::Ident(_) | TokenKind::Punct(':') => k += 1,
                    TokenKind::Punct('{') => {
                        is_literal = k > i + 2;
                        break;
                    }
                    _ => break,
                }
            }
            if is_literal {
                let len = balanced(body, k, '{', '}');
                let inner = &body[k + 1..(k + len).saturating_sub(1)];
                collect_literal_keys(inner, &mut reads);
                i = k + len;
                continue;
            }
        }
        i += 1;
    }
    if reads.is_empty() {
        Shape::Ops(Vec::new())
    } else {
        Shape::Struct(reads)
    }
}

/// Keys of a struct literal body whose value expression reads from `r`.
/// Shorthand keys (`{ times, values }`) refer to earlier `let` reads and
/// are skipped to avoid double counting.
fn collect_literal_keys(inner: &[Token], reads: &mut Vec<String>) {
    let mut i = 0;
    while i < inner.len() {
        let Some(TokenKind::Ident(key)) = inner.get(i).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        let is_keyed = inner.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !inner.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !is_keyed {
            i += 1;
            continue;
        }
        let key = key.clone();
        // The value expression runs to the next `,` at delimiter depth 0.
        let mut depth = 0i32;
        let mut end = i + 2;
        while end < inner.len() {
            match &inner[end].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                TokenKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if inner[i + 2..end].iter().any(|t| t.is_ident("r")) {
            reads.push(key);
        }
        i = end + 1;
    }
}

/// Split a match body into `(pattern, body)` arm slices at delimiter
/// depth 0, using the `=>` separators.
fn split_arms(body: &[Token]) -> Vec<(&[Token], &[Token])> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Pattern: tokens up to `=>`.
        let pat_start = i;
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                TokenKind::Punct('=')
                    if depth == 0 && body.get(i + 1).is_some_and(|t| t.is_punct('>')) =>
                {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if i >= body.len() {
            break;
        }
        let pattern = &body[pat_start..i];
        i += 2; // past `=>`
        // Body: to the `,` at depth 0 (or a balanced `{…}` block).
        let body_start = i;
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth == 0 && body[i].is_punct('}') && body[body_start].is_punct('{') {
                        i += 1;
                        break;
                    }
                }
                TokenKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        arms.push((pattern, &body[body_start..i]));
        if i < body.len() && body[i].is_punct(',') {
            i += 1;
        }
    }
    arms
}

/// Variant name of an arm pattern: the ident after the last `::`, or the
/// first ident for unqualified patterns (`None`, `Some(v)`).
fn pattern_name(pattern: &[Token]) -> String {
    let mut name = String::new();
    for i in 0..pattern.len() {
        if let TokenKind::Ident(s) = &pattern[i].kind {
            if name.is_empty() {
                name = s.clone();
            }
            if i >= 2 && pattern[i - 1].is_punct(':') && pattern[i - 2].is_punct(':') {
                name = s.clone();
            }
        }
    }
    name
}

/// The numeric literal of an `out.push(N)` inside an arm body.
fn find_push_literal(body: &[Token]) -> Option<String> {
    for i in 0..body.len() {
        if body[i].is_ident("push")
            && body.get(i + 1).is_some_and(|t| t.is_punct('('))
            && body.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(n) = body.get(i + 2).and_then(|t| t.num()) {
                return Some(n.to_string());
            }
        }
    }
    None
}

// --------------------------------------------------------------- the lock

/// Container versions parsed from the sources: `SNAPSHOT_VERSION: u32 = N`
/// and `WAL_HEADER: &str = "WEBEVO-WAL N"`.
pub fn wire_versions(ws: &Workspace) -> (u32, u32) {
    let mut snapshot = 0;
    let mut wal = 0;
    for (_, file) in ws.files() {
        let tokens = file.tokens();
        for i in 0..tokens.len() {
            if tokens[i].is_ident("SNAPSHOT_VERSION") {
                for t in tokens.iter().skip(i).take(8) {
                    if let Some(n) = t.num().and_then(|n| n.parse::<u32>().ok()) {
                        snapshot = n;
                        break;
                    }
                }
            }
            if tokens[i].is_ident("WAL_HEADER") {
                for t in tokens.iter().skip(i).take(8) {
                    if let TokenKind::Str(s) = &t.kind {
                        if let Some(n) = s.strip_prefix("WEBEVO-WAL ") {
                            if let Ok(n) = n.trim().parse::<u32>() {
                                wal = n;
                            }
                        }
                        break;
                    }
                }
            }
        }
    }
    (snapshot, wal)
}

fn render_shape(shape: &Shape) -> String {
    match shape {
        Shape::Struct(fields) => format!("struct {}", fields.join(" ")),
        Shape::Enum(arms) => {
            let rendered: Vec<String> = arms
                .iter()
                .map(|a| {
                    if a.subops > 0 {
                        format!("{}={}({})", a.name, a.tag, a.subops)
                    } else {
                        format!("{}={}", a.name, a.tag)
                    }
                })
                .collect();
            format!("enum {}", rendered.join(" "))
        }
        Shape::Ops(ops) => {
            if ops.is_empty() {
                "ops -".to_string()
            } else {
                format!("ops {}", ops.iter().map(|o| o.word()).collect::<Vec<_>>().join(" "))
            }
        }
    }
}

/// Render the canonical lock text for the workspace (header comment,
/// `format` line, then one line per encoded type, key-sorted).
pub fn render_lock(ws: &Workspace) -> String {
    let types = extract(ws);
    let (snapshot, wal) = wire_versions(ws);
    let mut out = String::from(
        "# SCHEMA.lock — canonical wire-format schema, derived from the BinEncode\n\
         # impls by `repro analyze`. Regenerate with:\n\
         #   cargo run -p webevo-bench --bin repro -- analyze --update-schema\n\
         # Every line here is byte layout: a reorder, addition, or removal must\n\
         # ship with a SNAPSHOT_VERSION / WAL_HEADER bump in webevo-store.\n",
    );
    let _ = writeln!(out, "format snapshot={snapshot} wal={wal}");
    for (key, schema) in &types {
        if let Some(enc) = &schema.encode {
            let _ = writeln!(out, "{key} {}", render_shape(&enc.shape));
        }
    }
    out
}

/// The comparable lines of a lock text: comments and blanks stripped.
fn canonical_lines(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Run the schema analysis: symmetry checks plus lock-drift detection.
/// `lock` is the current `SCHEMA.lock` contents, if the file exists.
pub fn check(ws: &Workspace, lock: Option<&str>, findings: &mut Vec<Finding>) {
    let types = extract(ws);
    for (key, schema) in &types {
        check_symmetry(key, schema, findings);
    }
    if types.is_empty() {
        return;
    }
    let current = render_lock(ws);
    let Some(lock) = lock else {
        findings.push(Finding::new(
            Lint::Schema,
            Severity::Error,
            "SCHEMA.lock",
            0,
            "SCHEMA.lock is missing — generate it with `repro analyze --update-schema` \
             and check it in",
        ));
        return;
    };
    let cur_lines = canonical_lines(&current);
    let lock_lines = canonical_lines(lock);
    if cur_lines == lock_lines {
        return;
    }
    let versions_match = cur_lines.first() == lock_lines.first();
    let to_map = |lines: &[String]| -> BTreeMap<String, String> {
        lines
            .iter()
            .filter_map(|l| l.split_once(' ').map(|(k, v)| (k.to_string(), v.to_string())))
            .collect()
    };
    let cur_map = to_map(&cur_lines);
    let lock_map = to_map(&lock_lines);
    let hint = if versions_match {
        "the container version did not change — bump SNAPSHOT_VERSION/WAL_HEADER in \
         webevo-store if the byte layout changed, then regenerate SCHEMA.lock with \
         `repro analyze --update-schema`"
    } else {
        "the container version changed — regenerate SCHEMA.lock with \
         `repro analyze --update-schema` so the lock matches"
    };
    let mut keys: Vec<&String> = cur_map.keys().chain(lock_map.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let (file, line) = types
            .get(key)
            .and_then(|s| s.encode.as_ref())
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_else(|| ("SCHEMA.lock".to_string(), 0));
        match (lock_map.get(key), cur_map.get(key)) {
            (Some(old), Some(new)) if old != new => {
                findings.push(Finding::new(
                    Lint::Schema,
                    Severity::Error,
                    file,
                    line,
                    format!("wire format of `{key}` drifted from SCHEMA.lock:\n  locked:  {old}\n  current: {new}\n{hint}"),
                ));
            }
            (None, Some(new)) if key != "format" => {
                findings.push(Finding::new(
                    Lint::Schema,
                    Severity::Error,
                    file,
                    line,
                    format!("`{key}` is encoded but absent from SCHEMA.lock ({new}) — {hint}"),
                ));
            }
            (Some(old), None) if key != "format" => {
                findings.push(Finding::new(
                    Lint::Schema,
                    Severity::Error,
                    file,
                    line,
                    format!("`{key}` is in SCHEMA.lock ({old}) but no longer encoded — {hint}"),
                ));
            }
            _ => {}
        }
    }
}

fn check_symmetry(key: &str, schema: &TypeSchema, findings: &mut Vec<Finding>) {
    let (enc, dec) = match (&schema.encode, &schema.decode) {
        (Some(e), Some(d)) => (e, d),
        (Some(e), None) => {
            findings.push(Finding::new(
                Lint::Schema,
                Severity::Error,
                &e.file,
                e.line,
                format!("`{key}` implements BinEncode but has no BinDecode — every \
                         encoded type must round-trip"),
            ));
            return;
        }
        (None, Some(d)) => {
            findings.push(Finding::new(
                Lint::Schema,
                Severity::Error,
                &d.file,
                d.line,
                format!("`{key}` implements BinDecode but has no BinEncode — every \
                         decoded type must round-trip"),
            ));
            return;
        }
        (None, None) => return,
    };
    match (&enc.shape, &dec.shape) {
        (Shape::Struct(ef), Shape::Struct(df)) if ef != df => {
            findings.push(Finding::new(
                Lint::Schema,
                Severity::Error,
                &dec.file,
                dec.line,
                format!(
                    "`{key}` encode/decode field order mismatch:\n  encode: {}\n  decode: {}\n\
                     fields must be read back in exactly the order they are written",
                    ef.join(" "),
                    df.join(" ")
                ),
            ));
        }
        (Shape::Enum(ea), Shape::Enum(da)) => {
            let emap: BTreeMap<&str, usize> =
                ea.iter().map(|a| (a.tag.as_str(), a.subops)).collect();
            let dmap: BTreeMap<&str, usize> =
                da.iter().map(|a| (a.tag.as_str(), a.subops)).collect();
            for (tag, subs) in &emap {
                match dmap.get(tag) {
                    None => findings.push(Finding::new(
                        Lint::Schema,
                        Severity::Error,
                        &dec.file,
                        dec.line,
                        format!("`{key}` encodes tag {tag} but decode has no arm for it"),
                    )),
                    Some(d) if d != subs => findings.push(Finding::new(
                        Lint::Schema,
                        Severity::Error,
                        &dec.file,
                        dec.line,
                        format!(
                            "`{key}` tag {tag}: encode writes {subs} operand(s) but \
                             decode reads {d}"
                        ),
                    )),
                    _ => {}
                }
            }
            for tag in dmap.keys() {
                if !emap.contains_key(tag) {
                    findings.push(Finding::new(
                        Lint::Schema,
                        Severity::Error,
                        &enc.file,
                        enc.line,
                        format!("`{key}` decodes tag {tag} but encode never writes it"),
                    ));
                }
            }
        }
        // Mixed or opaque shapes: symmetry can't be judged by name; the
        // lock still pins the encode-side layout.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{CrateSources, SourceFile, Workspace};

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(vec![CrateSources::new(
            "x",
            vec![SourceFile::new("crates/x/src/lib.rs", src)],
        )])
    }

    const STRUCT_PAIR: &str = "
        impl BinEncode for Point {
            fn bin_encode(&self, out: &mut Vec<u8>) {
                self.x.bin_encode(out);
                self.y.bin_encode(out);
            }
        }
        impl BinDecode for Point {
            fn bin_decode(r: &mut BinReader<'_>) -> Result<Point, BinError> {
                Ok(Point { x: u64::bin_decode(r)?, y: u64::bin_decode(r)? })
            }
        }
    ";

    #[test]
    fn struct_pair_extracts_and_matches() {
        let types = extract(&ws(STRUCT_PAIR));
        let t = &types["x::Point"];
        assert_eq!(
            t.encode.as_ref().unwrap().shape,
            Shape::Struct(vec!["x".into(), "y".into()])
        );
        assert_eq!(
            t.decode.as_ref().unwrap().shape,
            Shape::Struct(vec!["x".into(), "y".into()])
        );
        let mut findings = Vec::new();
        for (k, s) in &types {
            check_symmetry(k, s, &mut findings);
        }
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn swapped_decode_order_is_an_error() {
        let src = STRUCT_PAIR.replace(
            "x: u64::bin_decode(r)?, y: u64::bin_decode(r)?",
            "y: u64::bin_decode(r)?, x: u64::bin_decode(r)?",
        );
        let types = extract(&ws(&src));
        let mut findings = Vec::new();
        for (k, s) in &types {
            check_symmetry(k, s, &mut findings);
        }
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("field order mismatch"));
    }

    #[test]
    fn enum_pair_tags_and_operands() {
        let src = "
            impl BinEncode for E {
                fn bin_encode(&self, out: &mut Vec<u8>) {
                    match self {
                        E::A => out.push(0),
                        E::B { n } => {
                            out.push(1);
                            n.bin_encode(out);
                        }
                    }
                }
            }
            impl BinDecode for E {
                fn bin_decode(r: &mut BinReader<'_>) -> Result<E, BinError> {
                    match r.byte()? {
                        0 => Ok(E::A),
                        1 => Ok(E::B { n: u64::bin_decode(r)? }),
                        other => Err(BinError::new(format!(\"bad tag {other}\"))),
                    }
                }
            }
        ";
        let types = extract(&ws(src));
        let t = &types["x::E"];
        match &t.encode.as_ref().unwrap().shape {
            Shape::Enum(arms) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0], Arm { name: "A".into(), tag: "0".into(), subops: 0 });
                assert_eq!(arms[1], Arm { name: "B".into(), tag: "1".into(), subops: 1 });
            }
            other => panic!("{other:?}"),
        }
        let mut findings = Vec::new();
        for (k, s) in &types {
            check_symmetry(k, s, &mut findings);
        }
        assert!(findings.is_empty(), "{findings:?}");

        // Drop decode's arm 1 → asymmetry.
        let broken = src.replace("1 => Ok(E::B { n: u64::bin_decode(r)? }),", "");
        let types = extract(&ws(&broken));
        let mut findings = Vec::new();
        for (k, s) in &types {
            check_symmetry(k, s, &mut findings);
        }
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no arm"), "{findings:?}");
    }

    #[test]
    fn push_match_idiom_parses() {
        let src = "
            impl BinEncode for K {
                fn bin_encode(&self, out: &mut Vec<u8>) {
                    out.push(match self {
                        K::P => 0,
                        K::Q => 1,
                    });
                }
            }
        ";
        let types = extract(&ws(src));
        match &types["x::K"].encode.as_ref().unwrap().shape {
            Shape::Enum(arms) => {
                assert_eq!(arms.iter().map(|a| a.tag.as_str()).collect::<Vec<_>>(), ["0", "1"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_counterpart_is_an_error() {
        let src = "
            impl BinEncode for Lonely {
                fn bin_encode(&self, out: &mut Vec<u8>) { self.a.bin_encode(out); }
            }
        ";
        let types = extract(&ws(src));
        let mut findings = Vec::new();
        for (k, s) in &types {
            check_symmetry(k, s, &mut findings);
        }
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no BinDecode"), "{findings:?}");
    }

    #[test]
    fn lock_drift_detected_and_versions_parsed() {
        let src = format!(
            "pub const SNAPSHOT_VERSION: u32 = 3;\n\
             pub const WAL_HEADER: &str = \"WEBEVO-WAL 2\";\n{STRUCT_PAIR}"
        );
        let workspace = ws(&src);
        assert_eq!(wire_versions(&workspace), (3, 2));
        let lock = render_lock(&workspace);
        assert!(lock.contains("format snapshot=3 wal=2"), "{lock}");
        assert!(lock.contains("x::Point struct x y"), "{lock}");

        // Unchanged lock: clean.
        let mut findings = Vec::new();
        check(&workspace, Some(&lock), &mut findings);
        assert!(findings.is_empty(), "{findings:?}");

        // Reorder the encode fields without a version bump: drift error.
        let drifted = src.replace(
            "self.x.bin_encode(out);\n                self.y.bin_encode(out);",
            "self.y.bin_encode(out);\n                self.x.bin_encode(out);",
        );
        let workspace2 = ws(&drifted);
        let mut findings = Vec::new();
        check(&workspace2, Some(&lock), &mut findings);
        let drift: Vec<_> = findings
            .iter()
            .filter(|f| f.message.contains("drifted from SCHEMA.lock"))
            .collect();
        assert_eq!(drift.len(), 1, "{findings:?}");
        assert!(drift[0].message.contains("version did not change"), "{findings:?}");
    }

    #[test]
    fn missing_lock_is_an_error() {
        let mut findings = Vec::new();
        check(&ws(STRUCT_PAIR), None, &mut findings);
        assert!(
            findings.iter().any(|f| f.message.contains("SCHEMA.lock is missing")),
            "{findings:?}"
        );
    }
}
