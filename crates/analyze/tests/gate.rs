//! End-to-end tests for the static-analysis gate: seeded-violation
//! fixtures (each must fire its lint), the schema lock-drift contract,
//! and the real workspace (which must be clean against the checked-in
//! `SCHEMA.lock`).

use webevo_analyze::scan::{CrateSources, SourceFile, Workspace};
use webevo_analyze::{analyze, schema, AnalyzeConfig, Lint, Severity};

/// One fixture crate named `name`, with `#![forbid(unsafe_code)]` in its
/// root and `body` appended to `src/lib.rs`.
fn fixture(name: &str, body: &str) -> Workspace {
    fixture_with_allow(name, body, None)
}

fn fixture_with_allow(name: &str, body: &str, allow: Option<&str>) -> Workspace {
    let lib = SourceFile::new(
        format!("crates/{name}/src/lib.rs"),
        format!("#![forbid(unsafe_code)]\n{body}"),
    );
    let mut krate = CrateSources::new(name, vec![lib]);
    if let Some(a) = allow {
        krate = krate.with_allow(a);
    }
    Workspace::from_sources(vec![krate])
}

fn run(ws: &Workspace, lock: Option<&str>) -> Vec<webevo_analyze::Finding> {
    analyze(ws, &AnalyzeConfig::workspace_default(), lock)
}

fn fired(findings: &[webevo_analyze::Finding], lint: Lint) -> bool {
    findings.iter().any(|f| f.lint == lint)
}

// ------------------------------------------------ seeded determinism lints

#[test]
fn seeded_hashmap_on_serialized_path_fires() {
    let ws = fixture(
        "store",
        "use std::collections::HashMap;\n\
         pub struct Index { pages: HashMap<u64, u32> }\n",
    );
    let f = run(&ws, None);
    assert!(fired(&f, Lint::UnorderedMap), "{f:?}");
    assert!(f.iter().any(|f| f.severity >= Severity::Warning));
}

#[test]
fn seeded_wall_clock_in_engine_fires() {
    let ws = fixture(
        "core",
        "use std::time::Instant;\n\
         pub fn step() { let _t = Instant::now(); }\n",
    );
    let f = run(&ws, None);
    assert!(fired(&f, Lint::WallClock), "{f:?}");
}

#[test]
fn seeded_thread_spawn_fires() {
    let ws = fixture(
        "schedule",
        "pub fn go() { std::thread::spawn(|| {}); }\n",
    );
    let f = run(&ws, None);
    assert!(fired(&f, Lint::RawThreadSpawn), "{f:?}");
}

#[test]
fn seeded_missing_forbid_unsafe_fires_as_error() {
    let lib = SourceFile::new("crates/stats/src/lib.rs", "pub fn f() {}\n");
    let ws = Workspace::from_sources(vec![CrateSources::new("stats", vec![lib])]);
    let f = run(&ws, None);
    assert!(
        f.iter()
            .any(|f| f.lint == Lint::MissingForbidUnsafe && f.severity == Severity::Error),
        "{f:?}"
    );
}

#[test]
fn seeded_panic_budget_overrun_fires() {
    let body = "pub fn f(v: Vec<u32>) -> u32 { *v.first().unwrap() + *v.last().unwrap() }\n";
    let over = fixture_with_allow(
        "core",
        body,
        Some("panic-budget src/lib.rs 1 -- one guarded site\n"),
    );
    let f = run(&over, None);
    assert!(
        f.iter()
            .any(|f| f.lint == Lint::PanicBudget && f.severity == Severity::Error),
        "{f:?}"
    );

    // At-budget is silent; under-budget is a ratchet-down note, not a failure.
    let exact = fixture_with_allow(
        "core",
        body,
        Some("panic-budget src/lib.rs 2 -- two guarded sites\n"),
    );
    assert!(run(&exact, None).is_empty());
    let under = fixture_with_allow(
        "core",
        body,
        Some("panic-budget src/lib.rs 3 -- stale budget\n"),
    );
    let f = run(&under, None);
    assert!(
        f.iter()
            .all(|f| f.lint == Lint::PanicBudget && f.severity == Severity::Note),
        "{f:?}"
    );
    assert_eq!(f.len(), 1);
}

#[test]
fn seeded_exemption_without_justification_fires() {
    let ws = fixture_with_allow(
        "core",
        "use std::collections::HashMap;\n",
        Some("unordered-map src/lib.rs\n"),
    );
    let f = run(&ws, None);
    assert!(
        f.iter()
            .any(|f| f.lint == Lint::Allowlist && f.severity == Severity::Error),
        "{f:?}"
    );
}

// ------------------------------------------------------- schema contract

/// A fixture store crate with a two-field wire struct. `fields` controls
/// the encode/decode order so tests can seed reorders; `snapshot` is the
/// container version constant.
fn wire_crate(encode: [&str; 2], decode: [&str; 2], snapshot: u32) -> Workspace {
    let lib = format!(
        "#![forbid(unsafe_code)]\n\
         pub const SNAPSHOT_VERSION: u32 = {snapshot};\n\
         pub const WAL_HEADER: &str = \"WEBEVO-WAL 2\";\n\
         pub struct Page {{ pub url: u64, pub rank: u64 }}\n\
         impl BinEncode for Page {{\n\
             fn bin_encode(&self, out: &mut Vec<u8>) {{\n\
                 self.{e0}.bin_encode(out);\n\
                 self.{e1}.bin_encode(out);\n\
             }}\n\
         }}\n\
         impl BinDecode for Page {{\n\
             fn bin_decode(r: &mut Reader) -> Result<Self> {{\n\
                 let {d0} = u64::bin_decode(r)?;\n\
                 let {d1} = u64::bin_decode(r)?;\n\
                 Ok(Page {{ url, rank }})\n\
             }}\n\
         }}\n",
        e0 = encode[0],
        e1 = encode[1],
        d0 = decode[0],
        d1 = decode[1],
    );
    let lib = SourceFile::new("crates/store/src/lib.rs", lib);
    Workspace::from_sources(vec![CrateSources::new("store", vec![lib])])
}

#[test]
fn wire_fixture_round_trips_into_the_lock() {
    let ws = wire_crate(["url", "rank"], ["url", "rank"], 3);
    let lock = schema::render_lock(&ws);
    assert!(lock.contains("format snapshot=3 wal=2"), "{lock}");
    assert!(lock.contains("store::Page struct url rank"), "{lock}");
    // A workspace checked against its own freshly rendered lock is clean.
    assert!(run(&ws, Some(&lock)).is_empty());
}

#[test]
fn seeded_field_reorder_without_version_bump_fails_against_lock() {
    let lock = schema::render_lock(&wire_crate(["url", "rank"], ["url", "rank"], 3));
    // Someone swaps the two encode writes (and the reads to match) but
    // leaves SNAPSHOT_VERSION alone: the byte layout changed silently.
    let reordered = wire_crate(["rank", "url"], ["rank", "url"], 3);
    let f = run(&reordered, Some(&lock));
    let drift: Vec<_> = f.iter().filter(|f| f.lint == Lint::Schema).collect();
    assert_eq!(drift.len(), 1, "{f:?}");
    assert_eq!(drift[0].severity, Severity::Error);
    assert!(drift[0].message.contains("drifted"), "{}", drift[0].message);
    assert!(
        drift[0].message.contains("bump SNAPSHOT_VERSION"),
        "no version-bump hint: {}",
        drift[0].message
    );
}

#[test]
fn seeded_field_reorder_with_version_bump_points_at_regeneration() {
    let lock = schema::render_lock(&wire_crate(["url", "rank"], ["url", "rank"], 3));
    let bumped = wire_crate(["rank", "url"], ["rank", "url"], 4);
    let f = run(&bumped, Some(&lock));
    let drift: Vec<_> = f.iter().filter(|f| f.lint == Lint::Schema).collect();
    assert!(!drift.is_empty(), "{f:?}");
    assert!(
        drift[0].message.contains("regenerate SCHEMA.lock"),
        "no regenerate hint: {}",
        drift[0].message
    );
    // And regenerating does resolve it.
    let fresh = schema::render_lock(&bumped);
    assert!(run(&bumped, Some(&fresh)).is_empty());
}

#[test]
fn seeded_encode_decode_asymmetry_fires() {
    // Encode writes url then rank; decode reads rank then url. The bytes
    // round-trip into the wrong fields — exactly what symmetry catches.
    let ws = wire_crate(["url", "rank"], ["rank", "url"], 3);
    let lock = schema::render_lock(&ws);
    let f = run(&ws, Some(&lock));
    assert!(
        f.iter()
            .any(|f| f.lint == Lint::Schema && f.message.contains("field order mismatch")),
        "{f:?}"
    );
}

#[test]
fn seeded_missing_lock_is_an_error() {
    let ws = wire_crate(["url", "rank"], ["url", "rank"], 3);
    let f = run(&ws, None);
    assert!(
        f.iter()
            .any(|f| f.lint == Lint::Schema && f.message.contains("SCHEMA.lock is missing")),
        "{f:?}"
    );
}

// --------------------------------------------------------- real workspace

fn repo_root() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../..")
}

#[test]
fn real_workspace_is_clean_under_deny_warnings() {
    let ws = webevo_analyze::scan_workspace(std::path::Path::new(repo_root())).expect("workspace sources readable");
    let lock = std::fs::read_to_string(format!("{}/SCHEMA.lock", repo_root()))
        .expect("SCHEMA.lock is checked in at the repo root");
    let findings = run(&ws, Some(&lock));
    assert!(
        findings.is_empty(),
        "the workspace must pass its own gate with zero findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn checked_in_lock_matches_regeneration() {
    let ws = webevo_analyze::scan_workspace(std::path::Path::new(repo_root())).expect("workspace sources readable");
    let lock = std::fs::read_to_string(format!("{}/SCHEMA.lock", repo_root()))
        .expect("SCHEMA.lock is checked in at the repo root");
    assert_eq!(
        schema::render_lock(&ws),
        lock,
        "SCHEMA.lock is stale — regenerate with `repro analyze --update-schema`"
    );
}

#[test]
fn real_workspace_wire_versions_match_the_lock_header() {
    let ws = webevo_analyze::scan_workspace(std::path::Path::new(repo_root())).expect("workspace sources readable");
    let (snapshot, wal) = schema::wire_versions(&ws);
    assert!(snapshot >= 3, "SNAPSHOT_VERSION went backwards: {snapshot}");
    assert!(wal >= 2, "WAL version went backwards: {wal}");
}
