//! Minimal offline stand-in for `proptest` 1.x.
//!
//! Supports the subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro wrapping `#[test] fn name(arg in strategy, …)`
//!   bodies;
//! - strategies: numeric ranges (`0.0f64..5.0`, `0u64..1000`, inclusive
//!   variants), tuples of strategies, and
//!   [`collection::vec`];
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Each test runs [`CASES`] deterministic cases from a seed derived from
//! the test name, so failures reproduce across runs. There is no
//! shrinking: the failing inputs are printed as-is via the panic message.

#![forbid(unsafe_code)]

/// Number of cases each property runs (proptest's default is 256).
pub const CASES: u32 = 128;

/// Deterministic RNG used to drive strategies (splitmix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identity and case index.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_of(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // Mix in occasional endpoint draws: real proptest biases toward
        // boundaries, and properties often key on them (e.g. lambda == 0).
        match rng.below(32) {
            0 => self.start,
            1 => f64_prev(self.end),
            _ => self.start + (self.end - self.start) * rng.unit_f64(),
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32
    }
}

/// Largest f64 strictly below `x` (for sampling the open upper endpoint).
fn f64_prev(x: f64) -> f64 {
    if x == f64::NEG_INFINITY || x.is_nan() {
        return x;
    }
    let bits = x.to_bits();
    let prev = if x > 0.0 {
        bits - 1
    } else if x == 0.0 {
        // Predecessor of +0.0/-0.0 is the smallest negative subnormal.
        (1u64 << 63) | 1
    } else {
        bits + 1
    };
    f64::from_bits(prev)
}

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

/// `Just(x)`: the constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element_strategy, 1..60)` — as in proptest.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
    /// The `prop` namespace alias used by idiomatic proptest code
    /// (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property; failure reports the expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("property assertion failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            );
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            );
        }
    }};
}

/// Discard the current case when its precondition fails.
///
/// Expands to an early `return` from the per-case closure, so the case
/// counts as skipped rather than failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0u64..100, ys in collection::vec(0.0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let seed = $crate::seed_of(stringify!($name));
            for case in 0..$crate::CASES {
                let mut rng = $crate::TestRng::new(seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                // A zero-argument move closure keeps the sampled bindings'
                // concrete types (closure *parameters* would defeat
                // inference) while giving prop_assume! an early-exit scope.
                let case_fn = move || $body;
                case_fn();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(5u64..10), &mut rng);
            assert!((5..10).contains(&x));
            let y = crate::Strategy::sample(&(-3i32..3), &mut rng);
            assert!((-3..3).contains(&y));
            let f = crate::Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::new(2);
        let strat = collection::vec(0u8..4, 1..6);
        for _ in 0..500 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn endpoint_bias_hits_lower_bound() {
        let mut rng = crate::TestRng::new(3);
        let hits = (0..2000)
            .filter(|_| crate::Strategy::sample(&(0.0f64..1.0), &mut rng) == 0.0)
            .count();
        assert!(hits > 0, "lower endpoint should be sampled occasionally");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..50, pair in (0u8..2, 0.0f64..1.0)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert!(pair.0 < 2);
            prop_assert_ne!(x, 13);
        }
    }
}
