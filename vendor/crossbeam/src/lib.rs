//! Minimal offline stand-in for the `crossbeam` 0.8 API surface used by
//! this workspace: multi-producer multi-consumer [`channel`]s and scoped
//! threads via [`scope`]. Built on `std::sync` + `std::thread::scope`,
//! so semantics (disconnect on last sender/receiver drop, panic
//! propagation out of the scope as `Err`) match crossbeam's contract for
//! the paths exercised here.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC FIFO channels with crossbeam's `Sender`/`Receiver` API.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and all
    /// senders are gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails iff every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(msg) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel poisoned").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }
}

/// A scope for spawning threads that may borrow from the caller's stack,
/// mirroring `crossbeam::scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope (crossbeam
    /// convention) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before
/// this returns. Returns `Err` with the panic payload if the closure or
/// any un-joined child thread panicked (crossbeam's contract).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // AssertUnwindSafe: like crossbeam, we place no UnwindSafe bound on the
    // caller; the panic payload is surfaced in the Err for it to handle.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn mpmc_across_scope() {
        let (tx, rx) = channel::unbounded::<u64>();
        let (out_tx, out_rx) = channel::unbounded::<u64>();
        super::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        out_tx.send(v * 2).unwrap();
                    }
                });
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .unwrap();
        drop(out_tx);
        let mut got: Vec<u64> = std::iter::from_fn(|| out_rx.try_recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scope_reports_panics() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("child panics"));
        });
        assert!(result.is_err());
    }
}
