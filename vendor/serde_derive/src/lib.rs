//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! `serde` stand-in.
//!
//! The real serde_derive rides on syn/quote; offline we hand-parse the
//! item's token stream. Supported shapes — everything this workspace
//! derives on:
//!
//! - structs with named fields, tuple structs (newtypes serialize
//!   transparently, wider tuples as sequences), unit structs;
//! - enums with unit variants (as strings), struct variants and tuple
//!   variants (externally tagged, single-entry maps);
//! - simple type generics (`PerDomain<T>`), each param bounded by the
//!   derived trait.
//!
//! `#[serde(...)]` attributes are NOT supported and are rejected loudly
//! rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the offline `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    let generics_decl = item.generics_decl("::serde::Serialize");
    let generics_use = item.generics_use();
    format!(
        "impl{generics_decl} ::serde::Serialize for {name}{generics_use} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        name = item.name,
    )
    .parse()
    .expect("serde_derive generated invalid Serialize impl")
}

/// Derive the offline `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = deserialize_body(&item);
    let generics_decl = item.generics_decl("::serde::Deserialize");
    let generics_use = item.generics_use();
    format!(
        "impl{generics_decl} ::serde::Deserialize for {name}{generics_use} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}",
        name = item.name,
    )
    .parse()
    .expect("serde_derive generated invalid Deserialize impl")
}

// ------------------------------------------------------------------ model

enum Fields {
    Unit,
    /// Tuple fields, by arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Type-parameter names, e.g. `["T"]` for `PerDomain<T>`.
    type_params: Vec<String>,
    shape: Shape,
}

impl Item {
    /// `<T: Bound, U: Bound>` or the empty string.
    fn generics_decl(&self, bound: &str) -> String {
        if self.type_params.is_empty() {
            String::new()
        } else {
            let params: Vec<String> =
                self.type_params.iter().map(|p| format!("{p}: {bound}")).collect();
            format!("<{}>", params.join(", "))
        }
    }

    /// `<T, U>` or the empty string.
    fn generics_use(&self) -> String {
        if self.type_params.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.type_params.join(", "))
        }
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let text = g.stream().to_string();
                        assert!(
                            !text.starts_with("serde"),
                            "offline serde_derive does not support #[serde(...)] attributes: {text}"
                        );
                    }
                    other => panic!("expected [...] after # in derive input, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };

    // Generics: collect top-level parameter idents, skipping bounds.
    let mut type_params = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut at_param_start = true;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    panic!("offline serde_derive does not support lifetime parameters")
                }
                TokenTree::Ident(id) if depth == 1 && at_param_start => {
                    let id = id.to_string();
                    assert!(
                        id != "const",
                        "offline serde_derive does not support const generics"
                    );
                    type_params.push(id);
                    at_param_start = false;
                }
                _ => {}
            }
        }
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("expected struct body, found {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };

    Item { name, type_params, shape }
}

/// Parse `name: Type, ...` field lists, returning the names. Commas inside
/// angle brackets (`HashMap<K, V>`) are not separators; commas inside
/// nested groups never reach this level because groups are single tokens.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("expected field name, found {tt:?}");
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        // Skip the type up to the next angle-depth-zero comma.
        let mut angle_depth = 0usize;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Count fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut end = tokens.len();
    // Ignore a trailing comma: `(A, B,)` has two fields, not three.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            end -= 1;
        }
    }
    if end == 0 {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0usize;
    for tt in &tokens[..end] {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("expected variant name, found {tt:?}");
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name: name.to_string(), fields });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("offline serde_derive does not support explicit discriminants")
            }
            Some(other) => panic!("expected `,` after variant, found {other:?}"),
            None => break,
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn serialize_body(item: &Item) -> String {
    match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                let tag = format!("::std::string::String::from(\"{vname}\")");
                let arm = match &v.fields {
                    Fields::Unit => format!(
                        "Self::{vname} => ::serde::Value::Str({tag}),"
                    ),
                    Fields::Tuple(1) => format!(
                        "Self::{vname}(__f0) => ::serde::Value::Map(::std::vec![({tag}, \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "Self::{vname}({binds}) => ::serde::Value::Map(::std::vec![({tag}, \
                             ::serde::Value::Seq(::std::vec![{elems}]))]),",
                            binds = binds.join(", "),
                            elems = elems.join(", "),
                        )
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "Self::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![({tag}, \
                             ::serde::Value::Map(::std::vec![{entries}]))]),",
                            entries = entries.join(", "),
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    }
}

fn named_fields_from(source: &str, type_path: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 {source}.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,"
            )
        })
        .collect();
    format!("{type_path} {{\n{}\n}}", inits.join("\n"))
}

fn deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(Fields::Unit) => format!(
            "match v {{ ::serde::Value::Null => Ok({name}), \
             _ => Err(::serde::Error::expected(\"null\", v)) }}"
        ),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(__xs) if __xs.len() == {n} => \
                         Ok({name}({elems})),\n\
                     _ => Err(::serde::Error::expected(\"a sequence of {n} elements\", v)),\n\
                 }}",
                elems = elems.join(", "),
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let build = named_fields_from("v", name, fields);
            format!(
                "match v {{\n\
                     ::serde::Value::Map(_) => Ok({build}),\n\
                     _ => Err(::serde::Error::expected(\"a map\", v)),\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push(format!("\"{vname}\" => Ok(Self::{vname}),")),
                    Fields::Tuple(1) => tagged_arms.push(format!(
                        "\"{vname}\" => Ok(Self::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__xs[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => match __inner {{\n\
                                 ::serde::Value::Seq(__xs) if __xs.len() == {n} => \
                                     Ok(Self::{vname}({elems})),\n\
                                 _ => Err(::serde::Error::expected(\
                                     \"a sequence of {n} elements\", __inner)),\n\
                             }},",
                            elems = elems.join(", "),
                        ));
                    }
                    Fields::Named(fields) => {
                        let build = named_fields_from("__inner", &format!("Self::{vname}"), fields);
                        tagged_arms.push(format!("\"{vname}\" => Ok({build}),"));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {units}\n\
                         __other => Err(::serde::Error::custom(::std::format!(\
                             \"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => Err(::serde::Error::custom(::std::format!(\
                                 \"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::expected(\"an enum value\", v)),\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}
