//! Minimal offline stand-in for `serde_json`: render the offline serde
//! [`Value`] tree to JSON text and parse it back. Supports the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null); non-finite floats serialize as `null` like real serde_json.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error::new)
}

// --------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(x, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(x, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(xs) if !xs.is_empty() => {
            out.push_str("[\n");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(x, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(x, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Render a finite f64 so that parsing the text recovers the exact same
/// bit pattern.
///
/// Rust's float formatting (both `{}` and `{:e}`) emits the *shortest*
/// decimal string that parses back to the identical value, and
/// `str::parse::<f64>` is correctly rounded — so encode → decode is
/// bitwise lossless for every finite value, including `-0.0` and
/// subnormals (pinned by the `webevo-store` proptest). Extreme magnitudes
/// use exponent notation: real serde_json (ryu) does the same, and it
/// keeps `5e-324` from expanding to hundreds of positional digits.
///
/// Non-finite floats serialize as `null`, like real serde_json; callers
/// that must round-trip ±∞/NaN (e.g. snapshot codecs) encode the bit
/// pattern instead.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let magnitude = x.abs();
        let text = if x != 0.0 && !(1e-5..1e16).contains(&magnitude) {
            format!("{x:e}")
        } else {
            format!("{x}")
        };
        out.push_str(&text);
        // Keep floats round-trippable as floats: `1.0` must not become `1`.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn float_integers_stay_floats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
    }

    #[test]
    fn extreme_floats_roundtrip_bitwise() {
        for x in [
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            f64::from_bits(1),           // smallest positive subnormal
            f64::from_bits((1 << 63) | 1), // smallest negative subnormal
            -0.0,
            0.0,
            1e300,
            // The infamous slow-parse value, by bit pattern (the literal
            // would trip clippy::excessive_precision).
            -f64::from_bits(0x000f_ffff_ffff_ffff),
            std::f64::consts::PI,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "json={json}");
        }
    }

    #[test]
    fn extreme_floats_use_exponent_form() {
        // Compactness parity with real serde_json (ryu): huge and tiny
        // magnitudes must not expand into hundreds of positional digits.
        assert_eq!(to_string(&1e300f64).unwrap(), "1e300");
        assert_eq!(to_string(&5e-324f64).unwrap(), "5e-324");
        assert!(to_string(&f64::MAX).unwrap().len() < 30);
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn result_roundtrips_externally_tagged() {
        let ok: Result2<u32, String> = Ok(7);
        let err: Result2<u32, String> = Err("boom".to_string());
        assert_eq!(to_string(&ok).unwrap(), "{\"Ok\":7}");
        assert_eq!(to_string(&err).unwrap(), "{\"Err\":\"boom\"}");
        assert_eq!(from_str::<Result2<u32, String>>("{\"Ok\":7}").unwrap(), ok);
        assert_eq!(
            from_str::<Result2<u32, String>>("{\"Err\":\"boom\"}").unwrap(),
            err
        );
    }

    /// `Result` under test (the crate's own `Result` alias shadows std's).
    type Result2<T, E> = std::result::Result<T, E>;

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vec_and_option() {
        let xs = vec![Some(1u32), None, Some(3)];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), xs);
    }

    #[test]
    fn nested_parse() {
        let v: Vec<Vec<f64>> = from_str("[[1.0, 2.0], [], [3e2]]").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![], vec![300.0]]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
