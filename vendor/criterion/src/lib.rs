//! Minimal offline stand-in for `criterion` 0.5.
//!
//! Keeps the macro and builder surface the benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`, `bench_with_input`, `sample_size`, [`BenchmarkId`],
//! `Bencher::iter` — and measures with `std::time::Instant`: a short
//! warm-up to calibrate iterations per sample, then `sample_size` samples,
//! reporting min/median/mean. No statistical regression machinery, no HTML
//! reports; `cargo bench` prints one line per benchmark.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export: benches import `black_box` from here or `std::hint`.
pub use std::hint::black_box;

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` → `sort/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function_name: function_name.into(), parameter: parameter.to_string() }
    }

    /// `BenchmarkId::from_parameter(1024)` → `1024`.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function_name: String::new(), parameter: parameter.to_string() }
    }
}

/// Things usable as a benchmark id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render to the display name.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        if self.function_name.is_empty() {
            self.parameter
        } else {
            format!("{}/{}", self.function_name, self.parameter)
        }
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// Runs closures and accumulates timing samples.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine`, calling it repeatedly; the standard criterion entry
    /// point. Return values are dropped *after* timing, like criterion.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: aim for samples of >= ~200µs so timer
        // overhead stays negligible, capped to keep total time bounded.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX));
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} no samples collected");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / u32::try_from(sorted.len()).expect("few samples");
        println!(
            "{name:<50} min {:>12?}   median {:>12?}   mean {:>12?}   ({} samples x {} iters)",
            min,
            median,
            mean,
            sorted.len(),
            self.iters_per_sample,
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark (default 30 here;
    /// criterion's default is 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declared measurement time; accepted for API compatibility (the
    /// stand-in's duration is governed by sample count alone).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Declared warm-up time; accepted for API compatibility.
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id_string());
        let mut bencher =
            Bencher { iters_per_sample: 1, samples: Vec::new(), target_samples: self.sample_size };
        f(&mut bencher);
        bencher.report(&name);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 30 }
    }
}

impl Criterion {
    /// Builder: set the default sample size for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.default_sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declare a benchmark group function, as in criterion:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` from group functions:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // `--help`-style listing is not supported by this stand-in.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).into_id_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).into_id_string(), "7");
    }
}
