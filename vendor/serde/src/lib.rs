//! Minimal offline stand-in for `serde` 1.x.
//!
//! Real serde is a zero-copy visitor framework; this stand-in keeps the
//! *user-facing surface* the workspace relies on — `#[derive(Serialize,
//! Deserialize)]` and `use serde::{Serialize, Deserialize}` — but routes
//! everything through an owned [`Value`] tree, which `serde_json` renders
//! to and parses from JSON text. Shapes follow serde's externally-tagged
//! defaults: newtype structs serialize transparently, unit enum variants
//! as strings, data-carrying variants as single-entry maps.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: an owned tree, JSON-shaped.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Sequences.
    Seq(Vec<Value>),
    /// Maps with string keys (struct fields, tagged variants).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }

    /// "expected X, found Y" convenience.
    pub fn expected(what: &str, found: &Value) -> Error {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::U64(_) | Value::I64(_) => "an integer",
            Value::F64(_) => "a float",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        };
        Error::custom(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::expected("an unsigned integer", v)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::expected("a signed integer", v)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::expected("a number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("a boolean", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("a string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::expected("a single-character string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("a sequence", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<VecDeque<T>, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let xs = Vec::<T>::from_value(v)?;
        let got = xs.len();
        xs.try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(xs) if xs.len() == ARITY => {
                        Ok(($($t::from_value(&xs[$idx])?,)+))
                    }
                    _ => Err(Error::expected("a tuple sequence", v)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// Maps and sets serialize as sequences of entries: JSON object keys must
// be strings, and our keys (PageId, Url, …) are not. This round-trips
// through this crate's own Deserialize, which is all the workspace needs.

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, Error> {
        Vec::<(K, V)>::from_value(v).map(HashMap::from_iter)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        Vec::<(K, V)>::from_value(v).map(BTreeMap::from_iter)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<HashSet<T>, Error> {
        Vec::<T>::from_value(v).map(HashSet::from_iter)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, Error> {
        Vec::<T>::from_value(v).map(BTreeSet::from_iter)
    }
}

// Results serialize externally tagged (`{"Ok": v}` / `{"Err": e}`), the
// same shape real serde gives `Result` — WAL records persist fetch
// results directly.

impl<T: Serialize, E: Serialize> Serialize for std::result::Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(v) => Value::Map(vec![("Ok".to_string(), v.to_value())]),
            Err(e) => Value::Map(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for std::result::Result<T, E> {
    fn from_value(v: &Value) -> Result<std::result::Result<T, E>, Error> {
        match v {
            Value::Map(entries) if entries.len() == 1 => match entries[0].0.as_str() {
                "Ok" => T::from_value(&entries[0].1).map(Ok),
                "Err" => E::from_value(&entries[0].1).map(Err),
                other => Err(Error::custom(format!(
                    "expected `Ok` or `Err` variant, found `{other}`"
                ))),
            },
            _ => Err(Error::expected("a single-entry `Ok`/`Err` map", v)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}
