//! Minimal offline stand-in for the `rand` 0.8 API surface used by this
//! workspace: [`rngs::SmallRng`], [`RngCore`], [`SeedableRng`], and the
//! [`Rng`] extension trait with `gen::<f64>()` / `gen_range(0..n)`.
//!
//! The generator is xoshiro256++ (the algorithm behind `SmallRng` on
//! 64-bit targets in rand 0.8), seeded through splitmix64 exactly as
//! `SeedableRng::seed_from_u64` does, so statistical quality matches the
//! real crate. Stream values are NOT guaranteed to be bit-identical to
//! crates.io `rand`; the workspace only relies on determinism for a fixed
//! seed, which this provides.

#![forbid(unsafe_code)]

/// Core RNG interface: raw 32/64-bit draws and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in real rand; here `[u8; 32]`).
    type Seed;
    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Build from a `u64` via splitmix64 expansion (matches rand 0.8).
    fn seed_from_u64(state: u64) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for bool {}
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: private::Sealed + Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1), as in rand 0.8's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 * span
                // and irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Widen to u128 so `end == MAX` cannot overflow the span.
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * <f64 as Standard>::sample(rng)
    }
}

/// Extension methods over any [`RngCore`], mirroring rand 0.8's `Rng`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Small, fast RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the `SmallRng` algorithm of rand 0.8 on 64-bit
    /// targets. Not cryptographically secure; excellent for simulation.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point; remap as rand does.
                let mut sm = 0xdead_beef_cafe_babe;
                for w in &mut s {
                    *w = splitmix64(&mut sm);
                }
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let x = r.gen_range(0..10usize);
            assert!(x < 10);
            seen_lo |= x == 0;
            seen_hi |= x == 9;
        }
        assert!(seen_lo && seen_hi, "both endpoints should appear");
    }

    #[test]
    fn inclusive_range_handles_type_extremes() {
        let mut r = SmallRng::seed_from_u64(6);
        for _ in 0..100 {
            let x = r.gen_range(1..=u64::MAX);
            assert!(x >= 1);
            let y = r.gen_range(u64::MIN..=u64::MAX);
            let _ = y; // any value is in range
            let z = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
