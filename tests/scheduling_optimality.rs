//! Scheduling integration tests: the optimal allocation dominates the
//! baselines across workloads and budgets, and the Figure 9 curve behaves.

use webevo::prelude::*;
use webevo::sim::DomainProfile;

fn paper_mixture(seed: u64, per_domain: usize) -> Vec<ChangeRate> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut rates = Vec::new();
    for domain in Domain::ALL {
        let profile = DomainProfile::calibrated(domain);
        for _ in 0..per_domain {
            rates.push(profile.sample_rate(&mut rng));
        }
    }
    rates
}

#[test]
fn optimal_dominates_across_budgets() {
    let rates = paper_mixture(1, 150);
    for &cycle_days in &[2.0, 10.0, 30.0, 90.0] {
        let budget = rates.len() as f64 / cycle_days;
        let uni = uniform_allocation(&rates, budget).unwrap();
        let prop = proportional_allocation(&rates, budget).unwrap();
        let opt = optimal_allocation(&rates, budget).unwrap();
        let f_uni = evaluate_allocation(&rates, &uni);
        let f_prop = evaluate_allocation(&rates, &prop);
        let f_opt = evaluate_allocation(&rates, &opt.allocation);
        assert!(
            f_opt >= f_uni - 1e-9 && f_opt >= f_prop - 1e-9,
            "cycle {cycle_days}: opt {f_opt} vs uni {f_uni} / prop {f_prop}"
        );
    }
}

#[test]
fn paper_gain_band_under_scarce_budget() {
    // The paper: optimizing revisit frequencies gains 10–23% freshness.
    // The gain depends on workload and budget; under a monthly budget on
    // the paper-calibrated mixture the optimal policy must beat uniform
    // by a clearly material margin within (or beyond) that band.
    let rates = paper_mixture(2, 200);
    let budget = rates.len() as f64 / 30.0;
    let uni = uniform_allocation(&rates, budget).unwrap();
    let opt = optimal_allocation(&rates, budget).unwrap();
    let f_uni = evaluate_allocation(&rates, &uni);
    let f_opt = evaluate_allocation(&rates, &opt.allocation);
    let gain = f_opt / f_uni - 1.0;
    assert!(
        gain > 0.08,
        "gain {gain:.3} should approach the paper's 10-23% band (uni {f_uni}, opt {f_opt})"
    );
}

#[test]
fn proportional_is_the_worst_policy_on_skewed_rates() {
    // The paper's §4.3 example shows proportional revisiting wastes budget
    // on hopeless pages. On a mixture with very hot pages it must lose to
    // uniform.
    let mut rates = paper_mixture(3, 100);
    // Spike in some hopeless, once-a-visit-plus pages.
    for _ in 0..40 {
        rates.push(ChangeRate(3.0));
    }
    let budget = rates.len() as f64 / 30.0;
    let uni = uniform_allocation(&rates, budget).unwrap();
    let prop = proportional_allocation(&rates, budget).unwrap();
    let f_uni = evaluate_allocation(&rates, &uni);
    let f_prop = evaluate_allocation(&rates, &prop);
    assert!(
        f_prop < f_uni,
        "proportional {f_prop} must lose to uniform {f_uni} on skewed rates"
    );
}

#[test]
fn weighted_scheduling_prioritizes_importance() {
    use webevo::schedule::weighted_optimal_allocation;
    let rates = vec![ChangeRate(0.1); 10];
    let mut weights = vec![1.0; 10];
    weights[0] = 25.0;
    let alloc = weighted_optimal_allocation(&rates, &weights, 2.0).unwrap();
    let f0 = alloc.frequencies[0];
    let avg_rest: f64 = alloc.frequencies[1..].iter().sum::<f64>() / 9.0;
    assert!(
        f0 > avg_rest * 1.5,
        "important page frequency {f0} vs others {avg_rest}"
    );
    assert!((alloc.total_budget() - 2.0).abs() < 1e-9);
}

#[test]
fn figure9_peak_moves_with_budget() {
    // More budget → the crawler can afford to chase faster pages: the
    // abandonment threshold (where f* returns to 0) moves right.
    let tight = optimal_frequency_curve(0.001, 20.0, 150, 5.0).unwrap();
    let rich = optimal_frequency_curve(0.001, 20.0, 150, 60.0).unwrap();
    let last_active = |curve: &[(f64, f64)]| {
        curve
            .iter()
            .rev()
            .find(|&&(_, f)| f > 0.0)
            .map(|&(l, _)| l)
            .unwrap_or(0.0)
    };
    assert!(
        last_active(&rich) > last_active(&tight),
        "richer budgets chase faster pages"
    );
}

#[test]
fn allocation_budget_conservation_property() {
    // Property-style sweep: for random mixtures, every policy conserves
    // the budget and produces non-negative frequencies.
    let mut rng = SimRng::seed_from_u64(11);
    for trial in 0..20 {
        let n = 5 + (trial % 7) * 13;
        let rates: Vec<ChangeRate> = (0..n)
            .map(|_| ChangeRate(rng.uniform_range(0.0, 2.0)))
            .collect();
        let budget = rng.uniform_range(0.5, 20.0);
        for alloc in [
            uniform_allocation(&rates, budget).unwrap(),
            proportional_allocation(&rates, budget).unwrap(),
            optimal_allocation(&rates, budget).unwrap().allocation,
        ] {
            assert!((alloc.total_budget() - budget).abs() < 1e-6);
            assert!(alloc.frequencies.iter().all(|&f| f >= 0.0));
        }
    }
}
