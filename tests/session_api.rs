//! `CrawlSession` builder validation: every misconfiguration surfaces as
//! a typed [`WebEvoError`] from `build()` or `resume()` — never a panic
//! and never a mid-crawl surprise.

use webevo::prelude::*;

fn universe() -> WebUniverse {
    WebUniverse::generate(UniverseConfig::test_scale(9))
}

/// `build()` must reject, with an `InvalidParameter`, a session whose
/// message mentions the offending knob.
fn assert_invalid(result: Result<CrawlSession<'_>, WebEvoError>, needle: &str) {
    match result {
        Err(WebEvoError::InvalidParameter(msg)) => assert!(
            msg.contains(needle),
            "error should mention {needle:?}, got: {msg}"
        ),
        Err(other) => panic!("expected InvalidParameter mentioning {needle:?}, got {other}"),
        Ok(_) => panic!("expected InvalidParameter mentioning {needle:?}, got a session"),
    }
}

#[test]
fn zero_capacity_is_a_typed_error() {
    let u = universe();
    for kind in [
        EngineKind::Periodic,
        EngineKind::Incremental,
        EngineKind::Threaded { workers: 2 },
    ] {
        assert_invalid(
            CrawlSession::builder()
                .engine(kind)
                .budget(CrawlBudget::paper_monthly(0))
                .universe(&u)
                .build(),
            "capacity",
        );
    }
}

#[test]
fn zero_workers_is_a_typed_error() {
    let u = universe();
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Threaded { workers: 0 })
            .budget(CrawlBudget::paper_monthly(10))
            .universe(&u)
            .build(),
        "worker",
    );
}

#[test]
fn custom_fetcher_with_threaded_engine_is_a_typed_error() {
    // The threaded engine's workers fetch through their own SimFetchers;
    // silently dropping a failure- or politeness-configured fetcher would
    // invalidate comparisons, so the builder refuses the combination.
    let u = universe();
    let mut fetcher = SimFetcher::new(&u).with_failure_rate(0.25);
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Threaded { workers: 2 })
            .budget(CrawlBudget::paper_monthly(10))
            .universe(&u)
            .fetcher(&mut fetcher)
            .build(),
        "worker fetchers",
    );
}

#[test]
fn unwritable_checkpoint_dir_is_a_typed_error() {
    // A path below a regular file can never become a directory — the
    // probe fails for any user, root included.
    let u = universe();
    let blocker = std::env::temp_dir().join(format!("webevo-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("tmp writable");
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .budget(CrawlBudget::paper_monthly(10))
            .universe(&u)
            .checkpoint(blocker.join("nested"), 5.0)
            .build(),
        "checkpoint dir",
    );
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn missing_engine_universe_or_config_are_typed_errors() {
    let u = universe();
    assert_invalid(
        CrawlSession::builder()
            .budget(CrawlBudget::paper_monthly(10))
            .universe(&u)
            .build(),
        "engine",
    );
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .budget(CrawlBudget::paper_monthly(10))
            .build(),
        "universe",
    );
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .universe(&u)
            .build(),
        "budget",
    );
}

#[test]
fn bad_cadences_are_typed_errors() {
    let u = universe();
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .budget(CrawlBudget::paper_monthly(10).with_cycle_days(0.0))
            .universe(&u)
            .build(),
        "crawl rate",
    );
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Periodic)
            .budget(CrawlBudget::paper_monthly(10).with_batch_window_days(45.0))
            .universe(&u)
            .build(),
        "window",
    );
    let dir = std::env::temp_dir().join(format!("webevo-cadence-{}", std::process::id()));
    assert_invalid(
        CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .budget(CrawlBudget::paper_monthly(10))
            .universe(&u)
            .checkpoint(&dir, 0.0)
            .build(),
        "cadence",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_checkpointing_is_a_typed_error() {
    let u = universe();
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(CrawlBudget::paper_monthly(10))
        .universe(&u)
        .build()
        .expect("a valid session");
    assert!(matches!(
        session.resume(10.0),
        Err(WebEvoError::InvalidState(msg)) if msg.contains("checkpoint")
    ));
}

#[test]
fn resume_with_nothing_on_disk_is_a_typed_error() {
    let u = universe();
    let dir = std::env::temp_dir().join(format!("webevo-nothing-{}", std::process::id()));
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(CrawlBudget::paper_monthly(10))
        .universe(&u)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("a valid session");
    assert!(matches!(
        session.resume(10.0),
        Err(WebEvoError::InvalidState(msg)) if msg.contains("nothing to resume")
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_mismatched_engine_kind_is_a_typed_error() {
    let u = universe();
    let dir = std::env::temp_dir().join(format!("webevo-mismatch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);

    // Write an *incremental* checkpoint...
    let mut writer = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&u)
        .checkpoint(&dir, 2.0)
        .build()
        .expect("a valid session");
    writer.run(10.0).expect("the crawl runs");
    drop(writer);

    // ...then try to resume it as a periodic crawl.
    let mut wrong = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .budget(budget)
        .universe(&u)
        .checkpoint(&dir, 2.0)
        .build()
        .expect("a valid session");
    match wrong.resume(20.0) {
        Err(WebEvoError::InvalidState(msg)) => {
            assert!(
                msg.contains("incremental") && msg.contains("periodic"),
                "error should name both kinds: {msg}"
            );
        }
        other => panic!("expected a kind-mismatch error, got {other:?}"),
    }

    // A worker-count difference within the threaded family is NOT a
    // mismatch — but incremental vs threaded is.
    let mut threaded = CrawlSession::builder()
        .engine(EngineKind::Threaded { workers: 3 })
        .budget(budget)
        .universe(&u)
        .checkpoint(&dir, 2.0)
        .build()
        .expect("a valid session");
    assert!(matches!(
        threaded.resume(20.0),
        Err(WebEvoError::InvalidState(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_over_an_orphaned_wal_is_a_typed_error_not_silent_loss() {
    // A WAL with committed records but no snapshot (hand-deleted here;
    // historically, an old-build crash between the first WAL flush and
    // the first snapshot) must refuse to resume — before the fix this
    // read as "nothing to resume" and a fresh run truncated the log.
    let u = universe();
    let dir = std::env::temp_dir().join(format!("webevo-orphan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
    let mut writer = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&u)
        .checkpoint(&dir, 50.0) // cadence never reached: base snapshot + fat WAL
        .build()
        .expect("a valid session");
    writer.run(10.0).expect("the crawl runs");
    drop(writer);
    std::fs::remove_file(dir.join(webevo::store::SNAPSHOT_FILE)).expect("snapshot exists");

    let mut orphaned = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&u)
        .checkpoint(&dir, 50.0)
        .build()
        .expect("a valid session");
    match orphaned.resume(20.0) {
        Err(WebEvoError::InvalidState(msg)) => assert!(
            msg.contains("committed record"),
            "error should name the stranded work: {msg}"
        ),
        other => panic!("expected an orphaned-WAL error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `FleetSession` builder validation rides the same typed-error contract.
#[test]
fn fleet_misconfigurations_are_typed_errors() {
    let u = universe();
    let budget = CrawlBudget::paper_monthly(10);
    let assert_fleet_invalid = |result: Result<FleetSession<'_>, WebEvoError>, needle: &str| {
        match result {
            Err(WebEvoError::InvalidParameter(msg)) => assert!(
                msg.contains(needle),
                "error should mention {needle:?}, got: {msg}"
            ),
            Err(other) => panic!("expected InvalidParameter mentioning {needle:?}, got {other}"),
            Ok(_) => panic!("expected InvalidParameter mentioning {needle:?}, got a fleet"),
        }
    };
    assert_fleet_invalid(
        FleetSession::builder().budget(budget).universe(&u).shards(0).build(),
        "shard",
    );
    assert_fleet_invalid(
        FleetSession::builder().budget(budget).universe(&u).shards(11).build(),
        "capacity",
    );
    // Threaded shards are supported; what stays a typed error is pairing
    // them with failure injection, which needs the session fetcher the
    // threaded engine's workers bypass.
    FleetSession::builder()
        .budget(budget)
        .universe(&u)
        .shards(2)
        .engine(EngineKind::Threaded { workers: 4 })
        .build()
        .expect("a threaded fleet builds");
    assert_fleet_invalid(
        FleetSession::builder()
            .budget(budget)
            .universe(&u)
            .shards(2)
            .engine(EngineKind::Threaded { workers: 4 })
            .failure_rate(0.1)
            .build(),
        "threaded",
    );
    assert_fleet_invalid(
        FleetSession::builder().budget(budget).universe(&u).shards(2).concurrency(0).build(),
        "concurrency",
    );
    assert_fleet_invalid(FleetSession::builder().universe(&u).shards(2).build(), "budget");
    assert_fleet_invalid(
        FleetSession::builder().budget(budget).shards(2).build(),
        "universe",
    );
}

#[test]
fn resume_to_a_covered_day_reports_recovered_state() {
    let u = universe();
    let dir = std::env::temp_dir().join(format!("webevo-covered-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let budget = CrawlBudget::paper_monthly(30).with_cycle_days(5.0);
    let mut writer = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&u)
        .checkpoint(&dir, 2.0)
        .build()
        .expect("a valid session");
    writer.run(20.0).expect("the crawl runs");
    drop(writer);

    let mut reader = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(budget)
        .universe(&u)
        .checkpoint(&dir, 2.0)
        .build()
        .expect("a valid session");
    // Day 5 is long past: resume() recovers and reports without crawling.
    let fetches = reader.resume(5.0).expect("recovers").fetches;
    assert!(fetches > 0, "recovered state carries the crawl so far");
    assert!(reader.clock().t >= 5.0);
    let _ = std::fs::remove_dir_all(&dir);
}
