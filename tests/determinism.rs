//! The deterministic-replay contract.
//!
//! Every stochastic component draws from a seeded [`SimRng`], so the whole
//! pipeline — universe generation, fetch simulation, crawler scheduling —
//! must replay bit-identically for a fixed `UniverseConfig` seed. These
//! tests pin that contract at the integration level: future refactors
//! (sharding, async engines) must not silently break replayability.

use webevo::prelude::*;

/// Run the incremental crawler against a fresh universe + fetcher built
/// from `seed` and return its metrics.
fn crawl(seed: u64, days: f64) -> CrawlMetrics {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(seed));
    let mut crawler = IncrementalCrawler::new(IncrementalConfig {
        capacity: 50,
        crawl_rate_per_day: 10.0,
        ..IncrementalConfig::monthly(50)
    });
    let mut fetcher = SimFetcher::new(&universe);
    crawler.run(&universe, &mut fetcher, 0.0, days);
    crawler.metrics().clone()
}

/// Exact equality of every observable metric channel. `CrawlMetrics` does
/// not implement `PartialEq` (float series rarely should), so compare the
/// channels explicitly — bitwise, not within tolerance: replay must be
/// exact, down to the last fetch.
fn assert_metrics_identical(a: &CrawlMetrics, b: &CrawlMetrics) {
    assert_eq!(a.fetches, b.fetches, "fetch counts diverged");
    assert_eq!(a.failed_fetches, b.failed_fetches, "failure counts diverged");
    assert_eq!(a.peak_speed, b.peak_speed, "peak speed diverged");
    let rows_a: Vec<(f64, f64)> = a.freshness.rows().collect();
    let rows_b: Vec<(f64, f64)> = b.freshness.rows().collect();
    assert_eq!(rows_a, rows_b, "freshness series diverged");
    let age_a: Vec<(f64, f64)> = a.age.rows().collect();
    let age_b: Vec<(f64, f64)> = b.age.rows().collect();
    assert_eq!(age_a, age_b, "age series diverged");
    assert_eq!(a.new_page_latency.count(), b.new_page_latency.count());
    assert_eq!(a.new_page_latency.mean(), b.new_page_latency.mean());
    assert_eq!(a.discovery_latency.count(), b.discovery_latency.count());
    assert_eq!(a.discovery_latency.mean(), b.discovery_latency.mean());
}

#[test]
fn identical_seeds_replay_identical_metrics() {
    let first = crawl(42, 30.0);
    let second = crawl(42, 30.0);
    assert!(first.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&first, &second);
}

#[test]
fn periodic_crawler_replays_identically() {
    let run = || {
        let universe = WebUniverse::generate(UniverseConfig::test_scale(42));
        let mut crawler = PeriodicCrawler::new(PeriodicConfig::monthly(50));
        let mut fetcher = SimFetcher::new(&universe);
        crawler.run(&universe, &mut fetcher, 0.0, 65.0);
        crawler.metrics().clone()
    };
    let first = run();
    let second = run();
    assert!(first.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&first, &second);
}

#[test]
fn different_seeds_diverge() {
    let a = crawl(42, 30.0);
    let b = crawl(43, 30.0);
    let rows_a: Vec<(f64, f64)> = a.freshness.rows().collect();
    let rows_b: Vec<(f64, f64)> = b.freshness.rows().collect();
    // Different universes must not produce the same trajectory; otherwise
    // the seed is not actually reaching the generator.
    assert_ne!(rows_a, rows_b, "seeds 42 and 43 produced identical runs");
}

#[test]
fn universe_generation_replays() {
    let a = WebUniverse::generate(UniverseConfig::test_scale(7));
    let b = WebUniverse::generate(UniverseConfig::test_scale(7));
    assert_eq!(a.sites().len(), b.sites().len());
    for (sa, sb) in a.sites().iter().zip(b.sites()) {
        assert_eq!(sa.id, sb.id);
    }
    // Page change histories must match event-for-event.
    for site in a.sites() {
        for t in [0.0, 5.0, 25.0] {
            assert_eq!(
                a.occupant(site.id, 0, t),
                b.occupant(site.id, 0, t),
                "window occupancy diverged at t={t}"
            );
        }
    }
}

#[test]
fn fork_streams_independent_of_consumer_ordering() {
    // Stream `s` must yield the same values no matter which other streams
    // were forked first, or how much the parent was consumed in between.
    let draw = |rng: &mut SimRng| -> Vec<u64> { (0..64).map(|_| rng.next_u64()).collect() };

    let root_a = SimRng::seed_from_u64(99);
    let mut fork_a = root_a.fork(5);
    let a = draw(&mut fork_a);

    let mut root_b = SimRng::seed_from_u64(99);
    let _ = root_b.fork(1);
    let _ = root_b.next_u64(); // consume the parent
    let _ = root_b.fork(17);
    let mut fork_b = root_b.fork(5);
    let b = draw(&mut fork_b);

    assert_eq!(a, b, "fork(5) must not depend on sibling forks or parent use");

    // And distinct streams must actually be distinct.
    let mut other = root_a.fork(6);
    assert_ne!(a, draw(&mut other), "fork(5) and fork(6) should diverge");
}
