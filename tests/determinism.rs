//! The deterministic-replay contract.
//!
//! Every stochastic component draws from a seeded [`SimRng`], so the whole
//! pipeline — universe generation, fetch simulation, crawler scheduling —
//! must replay bit-identically for a fixed `UniverseConfig` seed. These
//! tests pin that contract at the integration level, through the public
//! `CrawlSession` API: future refactors (sharding, async engines) must not
//! silently break replayability, and the session redesign itself is held
//! to the pre-redesign engines' byte-identical metrics.

use std::path::PathBuf;
use webevo::prelude::*;

/// A unique temp directory per test (tests run concurrently).
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webevo-det-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the incremental crawler against a fresh universe + fetcher built
/// from `seed` and return its metrics.
fn crawl(seed: u64, days: f64) -> CrawlMetrics {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(seed));
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(IncrementalConfig {
            capacity: 50,
            crawl_rate_per_day: 10.0,
            ..IncrementalConfig::monthly(50)
        })
        .universe(&universe)
        .build()
        .expect("a valid session");
    session.run(days).expect("the crawl runs");
    session.metrics().clone()
}

/// Exact equality of every observable metric channel. `CrawlMetrics` does
/// not implement `PartialEq` (float series rarely should), so compare the
/// channels explicitly — bitwise, not within tolerance: replay must be
/// exact, down to the last fetch.
fn assert_metrics_identical(a: &CrawlMetrics, b: &CrawlMetrics) {
    assert_eq!(a.fetches, b.fetches, "fetch counts diverged");
    assert_eq!(a.failed_fetches, b.failed_fetches, "failure counts diverged");
    assert_eq!(a.peak_speed, b.peak_speed, "peak speed diverged");
    let rows_a: Vec<(f64, f64)> = a.freshness.rows().collect();
    let rows_b: Vec<(f64, f64)> = b.freshness.rows().collect();
    assert_eq!(rows_a, rows_b, "freshness series diverged");
    let age_a: Vec<(f64, f64)> = a.age.rows().collect();
    let age_b: Vec<(f64, f64)> = b.age.rows().collect();
    assert_eq!(age_a, age_b, "age series diverged");
    assert_eq!(a.new_page_latency.count(), b.new_page_latency.count());
    assert_eq!(a.new_page_latency.mean(), b.new_page_latency.mean());
    assert_eq!(a.discovery_latency.count(), b.discovery_latency.count());
    assert_eq!(a.discovery_latency.mean(), b.discovery_latency.mean());
}

#[test]
fn identical_seeds_replay_identical_metrics() {
    let first = crawl(42, 30.0);
    let second = crawl(42, 30.0);
    assert!(first.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&first, &second);
}

#[test]
fn periodic_crawler_replays_identically() {
    let run = || {
        let universe = WebUniverse::generate(UniverseConfig::test_scale(42));
        let mut session = CrawlSession::builder()
            .engine(EngineKind::Periodic)
            .periodic(PeriodicConfig::monthly(50))
            .universe(&universe)
            .build()
            .expect("a valid session");
        session.run(65.0).expect("the crawl runs");
        session.metrics().clone()
    };
    let first = run();
    let second = run();
    assert!(first.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&first, &second);
}

#[test]
fn different_seeds_diverge() {
    let a = crawl(42, 30.0);
    let b = crawl(43, 30.0);
    let rows_a: Vec<(f64, f64)> = a.freshness.rows().collect();
    let rows_b: Vec<(f64, f64)> = b.freshness.rows().collect();
    // Different universes must not produce the same trajectory; otherwise
    // the seed is not actually reaching the generator.
    assert_ne!(rows_a, rows_b, "seeds 42 and 43 produced identical runs");
}

#[test]
fn universe_generation_replays() {
    let a = WebUniverse::generate(UniverseConfig::test_scale(7));
    let b = WebUniverse::generate(UniverseConfig::test_scale(7));
    assert_eq!(a.sites().len(), b.sites().len());
    for (sa, sb) in a.sites().iter().zip(b.sites()) {
        assert_eq!(sa.id, sb.id);
    }
    // Page change histories must match event-for-event.
    for site in a.sites() {
        for t in [0.0, 5.0, 25.0] {
            assert_eq!(
                a.occupant(site.id, 0, t),
                b.occupant(site.id, 0, t),
                "window occupancy diverged at t={t}"
            );
        }
    }
}

// --------------------------------------------------------------------
// The durable-state extension of the replay contract: a run that is
// killed, recovered from `snapshot + WAL tail`, and continued must be
// indistinguishable — bit for bit, on every metric channel — from a run
// that was never interrupted. (webevo-store's acceptance bar, exercised
// through CrawlSession::resume for every engine.)
// --------------------------------------------------------------------

#[test]
fn incremental_killed_and_recovered_matches_uninterrupted() {
    let dir = temp_dir("inc-recover");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(42));
    let config = IncrementalConfig {
        capacity: 50,
        crawl_rate_per_day: 10.0,
        ..IncrementalConfig::monthly(50)
    };
    // Failure injection makes the fetcher genuinely stateful (its attempt
    // counter drives the failure pattern), so this also proves fetcher
    // state survives the crash.
    let failure_rate = 0.15;

    // Phase 1: crawl under the checkpointer, then "kill" the process by
    // dropping every in-memory structure. Day 23 is deliberately not a
    // checkpoint boundary.
    let mut killed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut killed = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config.clone())
        .universe(&universe)
        .fetcher(&mut killed_fetcher)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir is writable");
    killed.run(23.0).expect("the crawl runs");
    let stats = killed.checkpoint_stats().expect("checkpointing active");
    assert!(stats.snapshots >= 2, "stats={stats:?}");
    drop(killed);
    drop(killed_fetcher);

    // Sanity: what is on disk predates the kill point.
    let on_disk = recover(&dir).expect("snapshot decodes").expect("snapshot exists");
    assert!(on_disk.state.clock.t < 23.0, "snapshot predates the kill point");

    // Phase 2: recover from disk and continue to day 40 — one call.
    let mut resumed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut resumed = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config.clone())
        .universe(&universe)
        .fetcher(&mut resumed_fetcher)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir is writable");
    resumed.resume(40.0).expect("snapshot + WAL tail recover");
    let resumed_metrics = resumed.metrics().clone();
    drop(resumed);

    // Reference: the same crawl, never interrupted.
    let mut reference_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut reference = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config)
        .universe(&universe)
        .fetcher(&mut reference_fetcher)
        .build()
        .expect("a valid session");
    reference.run(40.0).expect("the crawl runs");
    let reference_metrics = reference.metrics().clone();
    drop(reference);

    assert!(reference_metrics.failed_fetches > 0, "failure injection active");
    assert_metrics_identical(&reference_metrics, &resumed_metrics);
    assert_eq!(
        Fetcher::export_state(&reference_fetcher),
        Fetcher::export_state(&resumed_fetcher),
        "fetcher replay state diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threaded_killed_and_recovered_matches_uninterrupted() {
    let dir = temp_dir("thr-recover");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(43));
    let config = IncrementalConfig {
        capacity: 50,
        crawl_rate_per_day: 10.0,
        ..IncrementalConfig::monthly(50)
    };
    let workers = 4;

    let mut killed = CrawlSession::builder()
        .engine(EngineKind::Threaded { workers })
        .incremental(config.clone())
        .universe(&universe)
        .checkpoint(&dir, 4.0)
        .build()
        .expect("checkpoint dir is writable");
    killed.run(21.0).expect("the crawl runs");
    let stats = killed.checkpoint_stats().expect("checkpointing active");
    assert!(stats.snapshots >= 2, "stats={stats:?}");
    drop(killed);

    let mut resumed = CrawlSession::builder()
        .engine(EngineKind::Threaded { workers })
        .incremental(config.clone())
        .universe(&universe)
        .checkpoint(&dir, 4.0)
        .build()
        .expect("checkpoint dir is writable");
    resumed.resume(35.0).expect("snapshot + WAL tail recover");

    let mut reference = CrawlSession::builder()
        .engine(EngineKind::Threaded { workers })
        .incremental(config)
        .universe(&universe)
        .build()
        .expect("a valid session");
    reference.run(35.0).expect("the crawl runs");

    assert!(reference.metrics().fetches > 0, "the run should actually crawl");
    assert_metrics_identical(reference.metrics(), resumed.metrics());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_killed_and_recovered_matches_uninterrupted() {
    // The periodic engine's save → kill → restore → continue parity: the
    // redesign brought it to full durability parity with the incremental
    // engines, and this pins it the same way. Day 23 sits mid-idle of the
    // first monthly cycle, past the first shadow swap (the engine's pass
    // boundary), so recovery crosses both a snapshot and an idle stretch.
    let dir = temp_dir("per-recover");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(44));
    let config = PeriodicConfig::monthly(50);
    let failure_rate = 0.15;

    let mut killed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut killed = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .periodic(config.clone())
        .universe(&universe)
        .fetcher(&mut killed_fetcher)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir is writable");
    killed.run(23.0).expect("the crawl runs");
    assert!(
        killed.checkpoint_stats().expect("checkpointing active").snapshots >= 1,
        "the first swap must have checkpointed"
    );
    drop(killed);
    drop(killed_fetcher);

    let mut resumed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut resumed = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .periodic(config.clone())
        .universe(&universe)
        .fetcher(&mut resumed_fetcher)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir is writable");
    resumed.resume(70.0).expect("snapshot + WAL tail recover");
    assert!(resumed.passes() >= 2, "the resumed run crosses the next swap");
    let resumed_metrics = resumed.metrics().clone();
    drop(resumed);

    let mut reference_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut reference = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .periodic(config)
        .universe(&universe)
        .fetcher(&mut reference_fetcher)
        .build()
        .expect("a valid session");
    reference.run(70.0).expect("the crawl runs");
    let reference_metrics = reference.metrics().clone();
    drop(reference);

    assert!(reference_metrics.failed_fetches > 0, "failure injection active");
    assert_metrics_identical(&reference_metrics, &resumed_metrics);
    assert_eq!(
        Fetcher::export_state(&reference_fetcher),
        Fetcher::export_state(&resumed_fetcher),
        "fetcher replay state diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_discarded_not_misparsed() {
    let dir = temp_dir("torn-wal");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(44));
    let config = IncrementalConfig {
        capacity: 40,
        crawl_rate_per_day: 8.0,
        ..IncrementalConfig::monthly(40)
    };

    // Long snapshot cadence: plenty of WAL accumulates past the snapshot.
    let mut killed = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config.clone())
        .universe(&universe)
        .checkpoint(&dir, 50.0)
        .build()
        .expect("checkpoint dir is writable");
    killed.run(18.0).expect("the crawl runs");
    drop(killed);

    let intact = recover(&dir).expect("decodes").expect("exists");
    assert!(!intact.wal.is_empty(), "test needs a WAL tail to tear");

    // Tear the log mid-record, as a crash during a flush would.
    let wal_path = dir.join(webevo::store::WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("wal readable");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 37]).expect("wal writable");

    let torn = recover(&dir).expect("torn WAL must still decode").expect("exists");
    assert!(
        torn.wal.len() < intact.wal.len(),
        "truncation must shrink the committed tail ({} vs {})",
        torn.wal.len(),
        intact.wal.len()
    );

    // Recovery from the torn log loses only the uncommitted work — the
    // continued crawl re-fetches it and still matches the uninterrupted
    // reference exactly.
    let mut resumed = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config.clone())
        .universe(&universe)
        .checkpoint(&dir, 50.0)
        .build()
        .expect("checkpoint dir is writable");
    resumed.resume(25.0).expect("torn checkpoint recovers");

    let mut reference = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config)
        .universe(&universe)
        .build()
        .expect("a valid session");
    reference.run(25.0).expect("the crawl runs");
    assert_metrics_identical(reference.metrics(), resumed.metrics());
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------------------
// The fleet extension of the replay contract: a sharded fleet's merged
// metrics are a pure function of (universe, plan, budget, horizon) —
// independent of how many worker threads drove the shards and of when
// each shard finished — and fleet recovery tolerates losing any single
// shard mid-run.
// --------------------------------------------------------------------

/// Exact equality of two fleet results: the merged view and every
/// per-shard channel. (`foreign_rejects` is deliberately excluded — it is
/// a per-process observability counter, not durable state, so a resumed
/// fleet reports only the rejections since its own start; the tests
/// comparing two *fresh* runs assert it separately.)
fn assert_fleet_identical(a: &FleetMetrics, b: &FleetMetrics) {
    assert_metrics_identical(&a.merged, &b.merged);
    assert_eq!(a.shards.len(), b.shards.len());
    for (sa, sb) in a.shards.iter().zip(&b.shards) {
        assert_eq!(sa.shard, sb.shard);
        assert_eq!(sa.capacity, sb.capacity);
        assert_eq!(sa.sites, sb.sites);
        assert_eq!(sa.collection_len, sb.collection_len, "{} diverged", sa.shard);
        assert_metrics_identical(&sa.metrics, &sb.metrics);
    }
}

#[test]
fn fleet_merge_identical_across_runs_and_thread_counts() {
    let run = |concurrency: usize| {
        let universe = WebUniverse::generate(UniverseConfig::test_scale(42));
        let mut fleet = FleetSession::builder()
            .shards(4)
            .budget(CrawlBudget::paper_monthly(48).with_cycle_days(6.0))
            .universe(&universe)
            .concurrency(concurrency)
            .build()
            .expect("a valid fleet");
        fleet.run(25.0).expect("the fleet runs").clone()
    };
    let four_wide = run(4);
    assert!(four_wide.merged.fetches > 0, "the fleet should actually crawl");
    assert!(
        four_wide.shards.iter().all(|s| s.metrics.fetches > 0),
        "every shard should actually crawl"
    );
    // The link-exchange protocol in action: cross-shard discoveries route
    // between shards instead of burning fetches as foreign rejects.
    assert!(four_wide.routed_links() > 0, "cross-shard links were exchanged");
    assert!(
        four_wide.shards.iter().all(|s| s.foreign_rejects == 0),
        "routing must keep every fetch on an owned site"
    );
    // Repeatability at the same thread count, and independence from it:
    // one thread serializes the shards, two interleaves them differently —
    // the results, including the exchanged batches, must not notice.
    for other in [run(4), run(1), run(2)] {
        assert_fleet_identical(&four_wide, &other);
        for (sa, sb) in four_wide.shards.iter().zip(&other.shards) {
            assert_eq!(
                sa.routed_links, sb.routed_links,
                "{} exchange deliveries diverged between fresh runs",
                sa.shard
            );
            assert_eq!(
                sa.foreign_rejects, sb.foreign_rejects,
                "{} routing-boundary hits diverged between fresh runs",
                sa.shard
            );
        }
    }
}

#[test]
fn fleet_kill_one_shard_resume_matches_uninterrupted() {
    let dir = temp_dir("fleet-kill-one");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(45));
    let budget = CrawlBudget::paper_monthly(36).with_cycle_days(6.0);
    let failure_rate = 0.15;
    let build = |checkpoint: bool| {
        let mut builder = FleetSession::builder()
            .shards(3)
            .budget(budget)
            .universe(&universe)
            .failure_rate(failure_rate);
        if checkpoint {
            builder = builder.checkpoint(&dir, 4.0);
        }
        builder.build().expect("a valid fleet")
    };

    // Phase 1: run the fleet under checkpointing, then "kill" it — and
    // tear shard 1's WAL mid-record, as if that one shard's process died
    // during a flush while the others checkpointed cleanly.
    let mut killed = build(true);
    killed.run(23.0).expect("the fleet runs");
    drop(killed);
    let wal_path = dir.join("shard-1").join(webevo::store::WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("shard 1 has a WAL");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 31]).expect("wal writable");

    // Phase 2: resume the whole fleet. Shard 1 replays its committed WAL
    // prefix and re-crawls the torn tail; shards 0 and 2 continue from
    // their snapshots — first rolling back any link exchange shard 1
    // never committed, then re-running it so all three shards re-enter
    // the barrier loop in lockstep.
    let mut resumed = build(true);
    let resumed_results = resumed.resume(40.0).expect("the fleet recovers").clone();

    // Reference: the same fleet, never interrupted.
    let mut reference = build(false);
    let reference_results = reference.run(40.0).expect("the fleet runs").clone();

    assert!(
        reference_results.merged.failed_fetches > 0,
        "failure injection should be active"
    );
    assert_fleet_identical(&reference_results, &resumed_results);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_rebalance_then_resume_matches_uninterrupted() {
    // Rebalancing migrates pages between shard checkpoints and rewrites
    // the manifest; what it must NOT do is perturb the crawl itself. Two
    // fleets take the same run → rebalance → resume path, but one is
    // additionally killed and recovered partway through the post-rebalance
    // leg — the final results must be bit-identical.
    let universe = WebUniverse::generate(UniverseConfig::test_scale(47));
    let budget = CrawlBudget::paper_monthly(36).with_cycle_days(6.0);
    let run_variant = |tag: &str, interrupt: bool| {
        let dir = temp_dir(tag);
        let build = |partition: ShardFn| {
            FleetSession::builder()
                .shards(3)
                .partition(partition)
                .budget(budget)
                .universe(&universe)
                .checkpoint(&dir, 4.0)
                .build()
                .expect("a valid fleet")
        };
        let mut fleet = build(ShardFn::Hash);
        fleet.run(12.0).expect("the fleet runs");
        let new_plan = ShardPlan::new(ShardFn::Balanced, 3, universe.site_count() as u32);
        fleet.rebalance(new_plan).expect("rebalances");
        if interrupt {
            fleet.resume(26.0).expect("the first post-rebalance leg runs");
            drop(fleet);
            // A fresh process picking up a rebalanced fleet configures the
            // partition the manifest records.
            fleet = build(ShardFn::Balanced);
        }
        let out = fleet.resume(40.0).expect("resumes to the end").clone();
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let straight = run_variant("rebalance-straight", false);
    let staged = run_variant("rebalance-staged", true);
    assert!(straight.merged.fetches > 0, "the fleet should actually crawl");
    assert_fleet_identical(&straight, &staged);
}

#[test]
fn threaded_fleet_identical_across_concurrency() {
    // Worker parallelism now composes with sharding: each shard runs its
    // own seq-tagged threaded coordinator, and the coordinator enforces
    // the shard scope at its dispatch queue. Neither the fleet's shard
    // concurrency nor the per-shard worker pool may leak into results.
    let run = |concurrency: usize| {
        let universe = WebUniverse::generate(UniverseConfig::test_scale(48));
        let mut fleet = FleetSession::builder()
            .shards(2)
            .engine(EngineKind::Threaded { workers: 2 })
            .budget(CrawlBudget::paper_monthly(48).with_cycle_days(6.0))
            .universe(&universe)
            .concurrency(concurrency)
            .build()
            .expect("a valid fleet");
        fleet.run(25.0).expect("the fleet runs").clone()
    };
    let baseline = run(1);
    assert!(baseline.merged.fetches > 0, "the fleet should actually crawl");
    assert!(
        baseline.shards.iter().all(|s| s.metrics.fetches > 0),
        "every shard should actually crawl"
    );
    assert!(baseline.routed_links() > 0, "cross-shard links were exchanged");
    assert!(
        baseline.shards.iter().all(|s| s.foreign_rejects == 0),
        "the coordinator must keep every dispatched fetch on an owned site"
    );
    for other in [run(2), run(4)] {
        assert_fleet_identical(&baseline, &other);
        for (sa, sb) in baseline.shards.iter().zip(&other.shards) {
            assert_eq!(
                sa.routed_links, sb.routed_links,
                "{} exchange deliveries diverged across concurrency",
                sa.shard
            );
        }
    }
}

#[test]
fn threaded_fleet_agrees_with_single_shard_threaded_run() {
    // Sharding apportions the budget and splits the frontier, so the
    // 2-shard merged series cannot be byte-identical to a 1-shard run —
    // but on merged metrics the fleet must land where the single threaded
    // crawler lands, the same statistical contract the threaded engine
    // itself is held to against the sequential one.
    let universe = WebUniverse::generate(UniverseConfig::test_scale(49));
    let budget = CrawlBudget::paper_monthly(48).with_cycle_days(6.0);
    let run = |shards: u32| {
        let mut fleet = FleetSession::builder()
            .shards(shards)
            .engine(EngineKind::Threaded { workers: 2 })
            .budget(budget)
            .universe(&universe)
            .build()
            .expect("a valid fleet");
        fleet.run(36.0).expect("the fleet runs").clone()
    };
    let single = run(1);
    let sharded = run(2);
    assert!(single.merged.fetches > 0, "the single shard should actually crawl");
    let f_single = single.merged.average_freshness_from(12.0);
    let f_sharded = sharded.merged.average_freshness_from(12.0);
    assert!(
        (f_single - f_sharded).abs() < 0.08,
        "single-shard {f_single} vs 2-shard merged {f_sharded}"
    );
    let n_single = single.collection_len();
    let n_sharded = sharded.collection_len();
    assert!(
        n_sharded >= n_single * 9 / 10,
        "2-shard collection {n_sharded} lags single-shard {n_single}"
    );
}

#[test]
fn threaded_fleet_kill_one_shard_resume_matches_uninterrupted() {
    // The threaded engine's WAL mixes seq-tagged fetch records with the
    // fleet's routed-batch records; recovery replays the committed prefix
    // through the same drive-end reconstruction the live loop uses, then
    // re-enters the barrier protocol in lockstep with the surviving
    // shards. Tear one shard's WAL mid-record and the resumed fleet must
    // still match an uninterrupted one bit for bit.
    let dir = temp_dir("thr-fleet-kill-one");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(50));
    let budget = CrawlBudget::paper_monthly(48).with_cycle_days(6.0);
    let build = |checkpoint: bool| {
        let mut builder = FleetSession::builder()
            .shards(2)
            .engine(EngineKind::Threaded { workers: 2 })
            .budget(budget)
            .universe(&universe);
        if checkpoint {
            builder = builder.checkpoint(&dir, 4.0);
        }
        builder.build().expect("a valid fleet")
    };

    let mut killed = build(true);
    killed.run(23.0).expect("the fleet runs");
    drop(killed);
    let wal_path = dir.join("shard-1").join(webevo::store::WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("shard 1 has a WAL");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 31]).expect("wal writable");

    let mut resumed = build(true);
    let resumed_results = resumed.resume(40.0).expect("the fleet recovers").clone();

    let mut reference = build(false);
    let reference_results = reference.run(40.0).expect("the fleet runs").clone();

    assert!(reference_results.merged.fetches > 0, "the fleet should actually crawl");
    assert!(reference_results.routed_links() > 0, "cross-shard links were exchanged");
    assert_fleet_identical(&reference_results, &resumed_results);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_killed_before_first_cadence_snapshot_recovers_from_base() {
    // The recovery bugfix pinned end to end: with a snapshot cadence the
    // run never reaches, the only snapshot on disk is the base (day-0)
    // one Checkpointer::create writes, and ALL crawl progress lives in
    // the WAL. Before the fix this directory recovered as `Ok(None)` and
    // a restart truncated the log — silently discarding committed work.
    let dir = temp_dir("base-snapshot");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(46));
    let config = IncrementalConfig {
        capacity: 40,
        crawl_rate_per_day: 8.0,
        ..IncrementalConfig::monthly(40)
    };
    let failure_rate = 0.2;

    let mut killed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut killed = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config.clone())
        .universe(&universe)
        .fetcher(&mut killed_fetcher)
        .checkpoint(&dir, 50.0)
        .build()
        .expect("checkpoint dir is writable");
    killed.run(13.0).expect("the crawl runs");
    drop(killed);
    drop(killed_fetcher);

    // What survived the kill is exactly `day-0 snapshot + WAL`.
    let on_disk = recover(&dir).expect("decodes").expect("base snapshot exists");
    assert_eq!(on_disk.state.fetch_seq, 0, "only the base snapshot was written");
    assert!(!on_disk.state.seeded, "the base snapshot predates seeding");
    assert!(!on_disk.wal.is_empty(), "all committed work lives in the WAL");

    let mut resumed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut resumed = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config.clone())
        .universe(&universe)
        .fetcher(&mut resumed_fetcher)
        .checkpoint(&dir, 50.0)
        .build()
        .expect("checkpoint dir is writable");
    resumed.resume(20.0).expect("base snapshot + WAL recover");
    let resumed_metrics = resumed.metrics().clone();
    drop(resumed);

    let mut reference_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    let mut reference = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(config)
        .universe(&universe)
        .fetcher(&mut reference_fetcher)
        .build()
        .expect("a valid session");
    reference.run(20.0).expect("the crawl runs");

    assert!(reference.metrics().failed_fetches > 0, "failure injection active");
    assert_metrics_identical(reference.metrics(), &resumed_metrics);
    assert_eq!(
        Fetcher::export_state(&reference_fetcher),
        Fetcher::export_state(&resumed_fetcher),
        "fetcher replay state diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_killed_before_any_boundary_restarts_cleanly() {
    // The empty-WAL edge of the base-snapshot path: the periodic engine's
    // first pass boundary is its first shadow swap (day 7 here), so a
    // kill at day 5 leaves the base snapshot and an empty log — recovery
    // must restart the run from day 0 and still match an uninterrupted
    // run exactly.
    let dir = temp_dir("per-base");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(47));
    let config = PeriodicConfig::monthly(50);

    let mut killed = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .periodic(config.clone())
        .universe(&universe)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir is writable");
    killed.run(5.0).expect("the crawl runs");
    drop(killed);

    let on_disk = recover(&dir).expect("decodes").expect("base snapshot exists");
    assert!(!on_disk.state.seeded && on_disk.wal.is_empty());

    let mut resumed = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .periodic(config.clone())
        .universe(&universe)
        .checkpoint(&dir, 5.0)
        .build()
        .expect("checkpoint dir is writable");
    resumed.resume(40.0).expect("base snapshot recovers");

    let mut reference = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .periodic(config)
        .universe(&universe)
        .build()
        .expect("a valid session");
    reference.run(40.0).expect("the crawl runs");
    assert_metrics_identical(reference.metrics(), resumed.metrics());
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------------------
// The observability extension of the replay contract: attaching a fully
// recording `ObsSink` must not perturb the crawl by a single byte.
// Spans time stages out of band and no observed value feeds back into a
// crawl decision, so a traced run and a Noop-sink run must agree on
// every metric channel AND on the raw checkpoint bytes (snapshot + WAL)
// they leave on disk.
// --------------------------------------------------------------------

/// Run `kind` twice over the same universe — once under a recording
/// sink, once untraced — and require byte-identical crawl output. Also
/// require the traced run to have actually observed something, so the
/// test cannot pass vacuously against a sink that was never wired in.
fn assert_observation_is_free(tag: &str, kind: EngineKind) {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(48));
    let budget = CrawlBudget::paper_monthly(50).with_cycle_days(6.0);
    let run = |suffix: &str, obs: Option<&ObsSink>| {
        let dir = temp_dir(&format!("{tag}-{suffix}"));
        let mut builder = CrawlSession::builder()
            .engine(kind)
            .budget(budget)
            .universe(&universe)
            .checkpoint(&dir, 6.0);
        if let Some(sink) = obs {
            builder = builder.obs(sink.clone());
        }
        let mut session = builder.build().expect("checkpoint dir is writable");
        session.run(30.0).expect("the crawl runs");
        let metrics = session.metrics().clone();
        drop(session);
        let snapshot = std::fs::read(dir.join(webevo::store::SNAPSHOT_FILE)).expect("snapshot");
        let wal = std::fs::read(dir.join(webevo::store::WAL_FILE)).expect("wal");
        let _ = std::fs::remove_dir_all(&dir);
        (metrics, snapshot, wal)
    };

    let sink = ObsSink::recording();
    let (traced, traced_snapshot, traced_wal) = run("traced", Some(&sink));
    let (plain, plain_snapshot, plain_wal) = run("plain", None);

    assert!(plain.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&plain, &traced);
    assert_eq!(plain_snapshot, traced_snapshot, "snapshot bytes diverged under observation");
    assert_eq!(plain_wal, traced_wal, "WAL bytes diverged under observation");

    let spans = sink.spans();
    assert!(!spans.is_empty(), "the traced run recorded no spans");
    for stage in
        [Stage::Drive, Stage::Pass, Stage::FetchBatch, Stage::WalFlush, Stage::SnapshotEncode]
    {
        assert!(
            spans.iter().any(|s| s.stage == stage),
            "no {} span recorded",
            stage.name()
        );
    }
    let registry = sink.merged_registry().expect("one sink, one edge set");
    assert!(registry.counter("fetch_ok_total") > 0, "fetch counters never fired");
    assert!(registry.counter("wal_fsyncs_total") > 0, "fsync counter never fired");
}

#[test]
fn incremental_traced_run_is_byte_identical_to_untraced() {
    assert_observation_is_free("obs-inc", EngineKind::Incremental);
}

#[test]
fn periodic_traced_run_is_byte_identical_to_untraced() {
    assert_observation_is_free("obs-per", EngineKind::Periodic);
}

#[test]
fn threaded_traced_run_is_byte_identical_to_untraced() {
    assert_observation_is_free("obs-thr", EngineKind::Threaded { workers: 4 });
}

#[test]
fn fleet_traced_run_is_byte_identical_to_untraced() {
    // The 4-shard variant: one fleet-wide sink, per-shard views via
    // `for_shard`. Traced and untraced fleets must agree on the merged
    // metrics, every per-shard channel, and every shard's checkpoint
    // bytes; the trace must cover the fleet-only stages too.
    let universe = WebUniverse::generate(UniverseConfig::test_scale(49));
    let budget = CrawlBudget::paper_monthly(36).with_cycle_days(6.0);
    let shards = 4u32;
    let run = |tag: &str, obs: Option<&ObsSink>| {
        let dir = temp_dir(tag);
        let mut builder = FleetSession::builder()
            .shards(shards)
            .budget(budget)
            .universe(&universe)
            .checkpoint(&dir, 5.0);
        if let Some(sink) = obs {
            builder = builder.obs(sink.clone());
        }
        let mut fleet = builder.build().expect("a valid fleet");
        let results = fleet.run(25.0).expect("the fleet runs").clone();
        drop(fleet);
        let mut files = Vec::new();
        for shard in 0..shards {
            let shard_dir = dir.join(format!("shard-{shard}"));
            files.push(std::fs::read(shard_dir.join(webevo::store::SNAPSHOT_FILE)).expect("snapshot"));
            files.push(std::fs::read(shard_dir.join(webevo::store::WAL_FILE)).expect("wal"));
        }
        let _ = std::fs::remove_dir_all(&dir);
        (results, files)
    };

    let sink = ObsSink::recording();
    let (traced, traced_files) = run("fleet-obs-traced", Some(&sink));
    let (plain, plain_files) = run("fleet-obs-plain", None);

    assert!(plain.merged.fetches > 0, "the fleet should actually crawl");
    assert_fleet_identical(&plain, &traced);
    assert_eq!(plain_files, traced_files, "shard checkpoint bytes diverged under observation");

    let spans = sink.spans();
    for stage in [
        Stage::Drive,
        Stage::Pass,
        Stage::FetchBatch,
        Stage::WalFlush,
        Stage::SnapshotEncode,
        Stage::ExchangeBarrier,
    ] {
        assert!(
            spans.iter().any(|s| s.stage == stage),
            "no {} span recorded",
            stage.name()
        );
    }
    for shard in 0..shards {
        assert!(
            spans.iter().any(|s| s.shard == Some(ShardId(shard))),
            "shard {shard} recorded no spans"
        );
    }
}

#[test]
fn fork_streams_independent_of_consumer_ordering() {
    // Stream `s` must yield the same values no matter which other streams
    // were forked first, or how much the parent was consumed in between.
    let draw = |rng: &mut SimRng| -> Vec<u64> { (0..64).map(|_| rng.next_u64()).collect() };

    let root_a = SimRng::seed_from_u64(99);
    let mut fork_a = root_a.fork(5);
    let a = draw(&mut fork_a);

    let mut root_b = SimRng::seed_from_u64(99);
    let _ = root_b.fork(1);
    let _ = root_b.next_u64(); // consume the parent
    let _ = root_b.fork(17);
    let mut fork_b = root_b.fork(5);
    let b = draw(&mut fork_b);

    assert_eq!(a, b, "fork(5) must not depend on sibling forks or parent use");

    // And distinct streams must actually be distinct.
    let mut other = root_a.fork(6);
    assert_ne!(a, draw(&mut other), "fork(5) and fork(6) should diverge");
}

// --------------------------------------------------------------------
// The serving extension of the replay contract: attaching the
// epoch-swapped query layer (`CrawlSession::serve` /
// `FleetSession::serve`) must not perturb the crawl by a single byte.
// The boundary publisher is write-only — it reads the arenas at a pass
// boundary and nothing it computes feeds back into a crawl decision —
// so a served run and an unserved run must agree on every metric
// channel AND on the raw checkpoint bytes they leave on disk, even with
// reader threads hammering the service for the whole run.
// --------------------------------------------------------------------

/// Run `kind` twice over the same universe — once with the serving layer
/// attached and a reader thread querying throughout, once unserved — and
/// require byte-identical crawl output. Also require the served run to
/// have actually published epochs and answered queries, so the test
/// cannot pass vacuously against a publisher that was never wired in.
fn assert_serving_is_free(tag: &str, kind: EngineKind) {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(48));
    let budget = CrawlBudget::paper_monthly(50).with_cycle_days(6.0);
    let run = |suffix: &str, serve: bool| {
        let dir = temp_dir(&format!("{tag}-{suffix}"));
        let mut session = CrawlSession::builder()
            .engine(kind)
            .budget(budget)
            .universe(&universe)
            .checkpoint(&dir, 6.0)
            .build()
            .expect("checkpoint dir is writable");
        let mut served = None;
        if serve {
            let queries = session.serve();
            assert_eq!(queries.epoch(), 0, "readers start on the empty epoch-0 view");
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let reader = std::thread::spawn({
                let queries = queries.clone();
                let stop = std::sync::Arc::clone(&stop);
                move || {
                    let mut answered = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let view = queries.view();
                        assert_eq!(view.info().pages, view.len());
                        let _ = view.freshness();
                        answered += 1;
                    }
                    answered
                }
            });
            session.run(30.0).expect("the crawl runs");
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let answered = reader.join().expect("reader thread");
            served = Some((queries, answered));
        } else {
            session.run(30.0).expect("the crawl runs");
        }
        let metrics = session.metrics().clone();
        drop(session);
        if let Some((queries, answered)) = &served {
            assert!(queries.epoch() >= 1, "no epoch was ever published");
            assert!(!queries.view().is_empty(), "the published view is empty");
            assert!(*answered > 0, "the reader thread answered nothing");
        }
        let snapshot = std::fs::read(dir.join(webevo::store::SNAPSHOT_FILE)).expect("snapshot");
        let wal = std::fs::read(dir.join(webevo::store::WAL_FILE)).expect("wal");
        let _ = std::fs::remove_dir_all(&dir);
        (metrics, snapshot, wal)
    };

    let (served, served_snapshot, served_wal) = run("served", true);
    let (plain, plain_snapshot, plain_wal) = run("plain", false);

    assert!(plain.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&plain, &served);
    assert_eq!(plain_snapshot, served_snapshot, "snapshot bytes diverged under serving");
    assert_eq!(plain_wal, served_wal, "WAL bytes diverged under serving");
}

#[test]
fn incremental_served_run_is_byte_identical_to_unserved() {
    assert_serving_is_free("serve-inc", EngineKind::Incremental);
}

#[test]
fn periodic_served_run_is_byte_identical_to_unserved() {
    assert_serving_is_free("serve-per", EngineKind::Periodic);
}

#[test]
fn threaded_served_run_is_byte_identical_to_unserved() {
    assert_serving_is_free("serve-thr", EngineKind::Threaded { workers: 4 });
}

#[test]
fn fleet_served_run_is_byte_identical_to_unserved() {
    // The 4-shard variant: per-shard publishers stage views, the
    // coordinator merges them into one fleet view at every exchange
    // barrier. Served and unserved fleets must agree on the merged
    // metrics, every per-shard channel, and every shard's checkpoint
    // bytes — and the served fleet must have published a merged view
    // spanning all shards' pages.
    let universe = WebUniverse::generate(UniverseConfig::test_scale(49));
    let budget = CrawlBudget::paper_monthly(36).with_cycle_days(6.0);
    let shards = 4u32;
    let run = |tag: &str, serve: bool| {
        let dir = temp_dir(tag);
        let mut fleet = FleetSession::builder()
            .shards(shards)
            .budget(budget)
            .universe(&universe)
            .checkpoint(&dir, 5.0)
            .build()
            .expect("a valid fleet");
        let queries = serve.then(|| fleet.serve());
        let results = fleet.run(25.0).expect("the fleet runs").clone();
        if let Some(queries) = &queries {
            assert!(queries.epoch() >= 1, "no fleet view was ever merged");
            let view = queries.view();
            assert_eq!(
                view.len(),
                results.collection_len(),
                "the merged view must span every shard's collection"
            );
            let fleet_fetches: u64 = view.info().fetch_seq;
            assert!(fleet_fetches > 0, "the merged view carries no fetch progress");
        }
        drop(fleet);
        let mut files = Vec::new();
        for shard in 0..shards {
            let shard_dir = dir.join(format!("shard-{shard}"));
            files.push(std::fs::read(shard_dir.join(webevo::store::SNAPSHOT_FILE)).expect("snapshot"));
            files.push(std::fs::read(shard_dir.join(webevo::store::WAL_FILE)).expect("wal"));
        }
        let _ = std::fs::remove_dir_all(&dir);
        (results, files)
    };

    let (served, served_files) = run("fleet-serve-on", true);
    let (plain, plain_files) = run("fleet-serve-off", false);

    assert!(plain.merged.fetches > 0, "the fleet should actually crawl");
    assert_fleet_identical(&plain, &served);
    assert_eq!(plain_files, served_files, "shard checkpoint bytes diverged under serving");
}

#[test]
fn concurrent_readers_always_see_one_consistent_epoch() {
    // N reader threads hammer the service across every epoch swap of a
    // live crawl. Each reader snapshots the view and checks internal
    // consistency — the stamp, the page count, the freshness stats, and
    // the memoized rollups must all describe the same epoch — and that
    // epochs only ever move forward. The crawl must cross at least 3
    // boundaries so swaps actually happen under the readers' feet.
    let universe = WebUniverse::generate(UniverseConfig::test_scale(50));
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .budget(CrawlBudget::paper_monthly(60).with_cycle_days(5.0))
        .universe(&universe)
        .build()
        .expect("a valid session");
    let queries = session.serve();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let queries = queries.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut checks = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let view = queries.view();
                    let info = view.info();
                    // One snapshot, one epoch: every number below comes
                    // from the same immutable view.
                    assert_eq!(info.epoch, view.epoch());
                    assert_eq!(info.pages, view.len());
                    assert!(
                        info.epoch >= last_epoch,
                        "epoch went backwards: {} after {last_epoch}",
                        info.epoch
                    );
                    last_epoch = info.epoch;
                    let freshness = view.freshness();
                    assert!(freshness.fetches <= info.fetch_seq);
                    let rollup_pages: usize =
                        view.site_rollups().iter().map(|r| r.pages).sum();
                    assert!(rollup_pages <= info.pages);
                    if let Some(first) = view.pages().first() {
                        // Point lookups answer from the same epoch too.
                        assert_eq!(
                            view.get(first.page).expect("first page resolves").page,
                            first.page
                        );
                    }
                    checks += 1;
                }
                (last_epoch, checks)
            })
        })
        .collect();
    session.run(20.0).expect("the crawl runs");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut max_epoch = 0u64;
    for reader in readers {
        let (epoch, checks) = reader.join().expect("reader thread");
        assert!(checks > 0, "a reader thread never ran a check");
        max_epoch = max_epoch.max(epoch);
    }
    assert!(
        queries.epoch() >= 3,
        "the crawl crossed fewer than 3 epoch swaps ({})",
        queries.epoch()
    );
    assert!(max_epoch >= 1, "no reader ever saw a published epoch");
}
