//! The deterministic-replay contract.
//!
//! Every stochastic component draws from a seeded [`SimRng`], so the whole
//! pipeline — universe generation, fetch simulation, crawler scheduling —
//! must replay bit-identically for a fixed `UniverseConfig` seed. These
//! tests pin that contract at the integration level: future refactors
//! (sharding, async engines) must not silently break replayability.

use std::path::PathBuf;
use webevo::prelude::*;

/// A unique temp directory per test (tests run concurrently).
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webevo-det-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the incremental crawler against a fresh universe + fetcher built
/// from `seed` and return its metrics.
fn crawl(seed: u64, days: f64) -> CrawlMetrics {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(seed));
    let mut crawler = IncrementalCrawler::new(IncrementalConfig {
        capacity: 50,
        crawl_rate_per_day: 10.0,
        ..IncrementalConfig::monthly(50)
    });
    let mut fetcher = SimFetcher::new(&universe);
    crawler.run(&universe, &mut fetcher, 0.0, days);
    crawler.metrics().clone()
}

/// Exact equality of every observable metric channel. `CrawlMetrics` does
/// not implement `PartialEq` (float series rarely should), so compare the
/// channels explicitly — bitwise, not within tolerance: replay must be
/// exact, down to the last fetch.
fn assert_metrics_identical(a: &CrawlMetrics, b: &CrawlMetrics) {
    assert_eq!(a.fetches, b.fetches, "fetch counts diverged");
    assert_eq!(a.failed_fetches, b.failed_fetches, "failure counts diverged");
    assert_eq!(a.peak_speed, b.peak_speed, "peak speed diverged");
    let rows_a: Vec<(f64, f64)> = a.freshness.rows().collect();
    let rows_b: Vec<(f64, f64)> = b.freshness.rows().collect();
    assert_eq!(rows_a, rows_b, "freshness series diverged");
    let age_a: Vec<(f64, f64)> = a.age.rows().collect();
    let age_b: Vec<(f64, f64)> = b.age.rows().collect();
    assert_eq!(age_a, age_b, "age series diverged");
    assert_eq!(a.new_page_latency.count(), b.new_page_latency.count());
    assert_eq!(a.new_page_latency.mean(), b.new_page_latency.mean());
    assert_eq!(a.discovery_latency.count(), b.discovery_latency.count());
    assert_eq!(a.discovery_latency.mean(), b.discovery_latency.mean());
}

#[test]
fn identical_seeds_replay_identical_metrics() {
    let first = crawl(42, 30.0);
    let second = crawl(42, 30.0);
    assert!(first.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&first, &second);
}

#[test]
fn periodic_crawler_replays_identically() {
    let run = || {
        let universe = WebUniverse::generate(UniverseConfig::test_scale(42));
        let mut crawler = PeriodicCrawler::new(PeriodicConfig::monthly(50));
        let mut fetcher = SimFetcher::new(&universe);
        crawler.run(&universe, &mut fetcher, 0.0, 65.0);
        crawler.metrics().clone()
    };
    let first = run();
    let second = run();
    assert!(first.fetches > 0, "the run should actually crawl");
    assert_metrics_identical(&first, &second);
}

#[test]
fn different_seeds_diverge() {
    let a = crawl(42, 30.0);
    let b = crawl(43, 30.0);
    let rows_a: Vec<(f64, f64)> = a.freshness.rows().collect();
    let rows_b: Vec<(f64, f64)> = b.freshness.rows().collect();
    // Different universes must not produce the same trajectory; otherwise
    // the seed is not actually reaching the generator.
    assert_ne!(rows_a, rows_b, "seeds 42 and 43 produced identical runs");
}

#[test]
fn universe_generation_replays() {
    let a = WebUniverse::generate(UniverseConfig::test_scale(7));
    let b = WebUniverse::generate(UniverseConfig::test_scale(7));
    assert_eq!(a.sites().len(), b.sites().len());
    for (sa, sb) in a.sites().iter().zip(b.sites()) {
        assert_eq!(sa.id, sb.id);
    }
    // Page change histories must match event-for-event.
    for site in a.sites() {
        for t in [0.0, 5.0, 25.0] {
            assert_eq!(
                a.occupant(site.id, 0, t),
                b.occupant(site.id, 0, t),
                "window occupancy diverged at t={t}"
            );
        }
    }
}

// --------------------------------------------------------------------
// The durable-state extension of the replay contract: a run that is
// killed, recovered from `snapshot + WAL tail`, and continued must be
// indistinguishable — bit for bit, on every metric channel — from a run
// that was never interrupted. (webevo-store's acceptance bar.)
// --------------------------------------------------------------------

#[test]
fn incremental_killed_and_recovered_matches_uninterrupted() {
    let dir = temp_dir("inc-recover");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(42));
    let config = IncrementalConfig {
        capacity: 50,
        crawl_rate_per_day: 10.0,
        ..IncrementalConfig::monthly(50)
    };
    // Failure injection makes the fetcher genuinely stateful (its attempt
    // counter drives the failure pattern), so this also proves fetcher
    // state survives the crash.
    let failure_rate = 0.15;

    // Phase 1: crawl under the checkpointer, then "kill" the process by
    // dropping every in-memory structure. Day 23 is deliberately not a
    // checkpoint boundary.
    let mut ckpt = Checkpointer::create(CheckpointConfig::new(&dir, 5.0))
        .expect("checkpoint dir is writable");
    let mut killed = IncrementalCrawler::new(config.clone());
    let mut killed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    killed.run_hooked(&universe, &mut killed_fetcher, 0.0, 23.0, &mut ckpt);
    assert!(ckpt.stats().snapshots >= 2, "stats={:?}", ckpt.stats());
    drop((killed, killed_fetcher, ckpt));

    // Phase 2: recover from disk and continue to day 40.
    let recovered = recover(&dir).expect("snapshot decodes").expect("snapshot exists");
    assert!(recovered.state.clock.t < 23.0, "snapshot predates the kill point");
    let (mut resumed, fetcher_state) = IncrementalCrawler::from_state(recovered.state);
    let mut resumed_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    resumed_fetcher.restore_state(fetcher_state.expect("sim fetcher state persisted"));
    resumed.replay(&universe, &mut resumed_fetcher, &recovered.wal);
    resumed.resume(&universe, &mut resumed_fetcher, 40.0, &mut NoopHook);

    // Reference: the same crawl, never interrupted.
    let mut reference = IncrementalCrawler::new(config);
    let mut reference_fetcher = SimFetcher::new(&universe).with_failure_rate(failure_rate);
    reference.run(&universe, &mut reference_fetcher, 0.0, 40.0);

    assert!(reference.metrics().failed_fetches > 0, "failure injection active");
    assert_metrics_identical(reference.metrics(), resumed.metrics());
    assert_eq!(
        Fetcher::export_state(&reference_fetcher),
        Fetcher::export_state(&resumed_fetcher),
        "fetcher replay state diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threaded_killed_and_recovered_matches_uninterrupted() {
    let dir = temp_dir("thr-recover");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(43));
    let config = IncrementalConfig {
        capacity: 50,
        crawl_rate_per_day: 10.0,
        ..IncrementalConfig::monthly(50)
    };
    let workers = 4;

    let mut ckpt = Checkpointer::create(CheckpointConfig::new(&dir, 4.0))
        .expect("checkpoint dir is writable");
    let mut killed = ThreadedCrawler::new(config.clone(), workers);
    killed.run_hooked(&universe, 0.0, 21.0, &mut ckpt);
    assert!(ckpt.stats().snapshots >= 2, "stats={:?}", ckpt.stats());
    drop((killed, ckpt));

    let recovered = recover(&dir).expect("snapshot decodes").expect("snapshot exists");
    let mut resumed = ThreadedCrawler::from_state(recovered.state);
    resumed.replay(&universe, &recovered.wal);
    resumed.resume(&universe, 35.0, &mut NoopHook);

    let mut reference = ThreadedCrawler::new(config, workers);
    reference.run(&universe, 0.0, 35.0);

    assert!(reference.metrics().fetches > 0, "the run should actually crawl");
    assert_metrics_identical(reference.metrics(), resumed.metrics());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_discarded_not_misparsed() {
    let dir = temp_dir("torn-wal");
    let universe = WebUniverse::generate(UniverseConfig::test_scale(44));
    let config = IncrementalConfig {
        capacity: 40,
        crawl_rate_per_day: 8.0,
        ..IncrementalConfig::monthly(40)
    };

    // Long snapshot cadence: plenty of WAL accumulates past the snapshot.
    let mut ckpt = Checkpointer::create(CheckpointConfig::new(&dir, 50.0))
        .expect("checkpoint dir is writable");
    let mut killed = IncrementalCrawler::new(config.clone());
    let mut killed_fetcher = SimFetcher::new(&universe);
    killed.run_hooked(&universe, &mut killed_fetcher, 0.0, 18.0, &mut ckpt);
    drop((killed, killed_fetcher, ckpt));

    let intact = recover(&dir).expect("decodes").expect("exists");
    assert!(!intact.wal.is_empty(), "test needs a WAL tail to tear");

    // Tear the log mid-record, as a crash during a flush would.
    let wal_path = dir.join(webevo::store::WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("wal readable");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 37]).expect("wal writable");

    let torn = recover(&dir).expect("torn WAL must still decode").expect("exists");
    assert!(
        torn.wal.len() < intact.wal.len(),
        "truncation must shrink the committed tail ({} vs {})",
        torn.wal.len(),
        intact.wal.len()
    );

    // Recovery from the torn log loses only the uncommitted work — the
    // continued crawl re-fetches it and still matches the uninterrupted
    // reference exactly.
    let (mut resumed, fetcher_state) = IncrementalCrawler::from_state(torn.state);
    let mut resumed_fetcher = SimFetcher::new(&universe);
    resumed_fetcher.restore_state(fetcher_state.expect("fetcher state persisted"));
    resumed.replay(&universe, &mut resumed_fetcher, &torn.wal);
    resumed.resume(&universe, &mut resumed_fetcher, 25.0, &mut NoopHook);

    let mut reference = IncrementalCrawler::new(config);
    let mut reference_fetcher = SimFetcher::new(&universe);
    reference.run(&universe, &mut reference_fetcher, 0.0, 25.0);
    assert_metrics_identical(reference.metrics(), resumed.metrics());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fork_streams_independent_of_consumer_ordering() {
    // Stream `s` must yield the same values no matter which other streams
    // were forked first, or how much the parent was consumed in between.
    let draw = |rng: &mut SimRng| -> Vec<u64> { (0..64).map(|_| rng.next_u64()).collect() };

    let root_a = SimRng::seed_from_u64(99);
    let mut fork_a = root_a.fork(5);
    let a = draw(&mut fork_a);

    let mut root_b = SimRng::seed_from_u64(99);
    let _ = root_b.fork(1);
    let _ = root_b.next_u64(); // consume the parent
    let _ = root_b.fork(17);
    let mut fork_b = root_b.fork(5);
    let b = draw(&mut fork_b);

    assert_eq!(a, b, "fork(5) must not depend on sibling forks or parent use");

    // And distinct streams must actually be distinct.
    let mut other = root_a.fork(6);
    assert_ne!(a, draw(&mut other), "fork(5) and fork(6) should diverge");
}
