//! The full §2–3 pipeline under stress: failure injection, censoring
//! behaviour, report rendering, and internal consistency of the produced
//! figures.

use webevo::experiment::report;
use webevo::prelude::*;

fn small_report(seed: u64, failure_rate: f64) -> ExperimentReport {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(seed));
    run_full_experiment(
        &universe,
        &MonitorConfig { days: 100, failure_rate, time_of_day: 0.0 },
        universe.site_count(),
        universe.site_count().saturating_sub(2),
    )
}

#[test]
fn figures_are_internally_consistent() {
    let r = small_report(600, 0.0);
    // Fig 2 fractions are distributions.
    let sum: f64 = r.fig2_overall.fractions().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
    // Fig 4 totals match across methods (same page population).
    assert_eq!(r.fig4_method1.total(), r.fig4_method2.total());
    // Method 2 never shortens lifespans: the >4months share can only grow.
    assert!(
        r.fig4_method2.fraction(LifespanBin::OverFourMonths)
            >= r.fig4_method1.fraction(LifespanBin::OverFourMonths) - 1e-12
    );
    // Fig 5 curves start at 1 and are monotone non-increasing.
    assert!((r.fig5_overall.at_day(0) - 1.0).abs() < 1e-9);
    let v = r.fig5_overall.values();
    assert!(v.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    // Table 1 counts sum to the permitted count.
    let total: usize = Domain::ALL
        .iter()
        .map(|&d| *r.selection.domain_counts.get(d))
        .sum();
    assert_eq!(total, r.selection.total());
}

#[test]
fn pipeline_survives_fetch_failures() {
    let clean = small_report(601, 0.0);
    let noisy = small_report(601, 0.2);
    // The monitor still produces full figures under 20% failures, and the
    // qualitative ordering (com faster than gov) survives.
    assert!(noisy.data.page_count() > 0);
    let com = noisy.fig2_by_domain.get(Domain::Com).fraction(IntervalBin::UpToDay);
    let gov = noisy.fig2_by_domain.get(Domain::Gov).fraction(IntervalBin::UpToDay);
    assert!(com > gov, "noisy run: com {com} vs gov {gov}");
    // Noise should not create pages out of thin air.
    assert!(noisy.data.page_count() <= clean.data.page_count() + 5);
}

#[test]
fn report_renders_every_section() {
    let r = small_report(602, 0.0);
    let text = report::render_full(&r);
    for needle in [
        "Table 1",
        "Figure 2",
        "Figure 4",
        "Figure 5",
        "Figure 6",
        "method1",
        "poisson",
        "50%",
    ] {
        assert!(text.contains(needle), "rendered report missing {needle:?}");
    }
}

#[test]
fn monitor_day_zero_cohort_is_window_sized() {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(603));
    let sites: Vec<SiteId> = universe.sites().iter().map(|s| s.id).collect();
    let monitor = DailyMonitor::new(MonitorConfig {
        days: 30,
        failure_rate: 0.0,
        time_of_day: 0.0,
    });
    let data = monitor.run(&universe, &sites);
    let day0: usize = data.records.iter().filter(|r| r.first_seen == 0).count();
    let expected: usize = sites
        .iter()
        .map(|&s| universe.window(s, 0.0).len())
        .sum();
    assert_eq!(day0, expected);
}

#[test]
fn selection_respects_candidate_ordering() {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(604));
    let all = select_sites(&universe, 0.0, universe.site_count(), universe.site_count());
    let top3 = select_sites(&universe, 0.0, 3, 3);
    // The top-3 candidates must be the first three of the full ranking.
    assert_eq!(top3.selected[..], all.selected[..3]);
}
