//! End-to-end assertions of the paper's published numbers and shapes.
//!
//! Analytic results (Table 2, the §4 sensitivity scenario, Figure 9's
//! shape) must match the paper to printed precision; measurement-study
//! results (Figures 2/4/5/6) must reproduce the paper's qualitative
//! orderings on a simulator calibrated from the paper's own fractions.

use webevo::prelude::*;

const FOUR_MONTHS: f64 = 120.0;
const MONTH: f64 = 30.0;
const WEEK: f64 = 7.0;

#[test]
fn table2_all_four_entries() {
    let lambda = 1.0 / FOUR_MONTHS;
    // Paper's Table 2: steady/in-place 0.88, batch/in-place 0.88,
    // steady/shadow 0.77 (we compute 0.78 before rounding), batch/shadow
    // 0.86.
    assert!((freshness_steady_inplace(lambda, MONTH) - 0.88).abs() < 0.01);
    assert!((freshness_batch_inplace(lambda, MONTH, WEEK) - 0.88).abs() < 0.01);
    assert!((freshness_steady_shadow(lambda, MONTH) - 0.78).abs() < 0.012);
    assert!((freshness_batch_shadow(lambda, MONTH, WEEK) - 0.86).abs() < 0.01);
}

#[test]
fn section4_sensitivity_scenario() {
    // "pages change every month, batch crawler operates for the first two
    // weeks": in-place 0.63 vs shadowing 0.50.
    let lambda = 1.0 / MONTH;
    assert!((freshness_batch_inplace(lambda, MONTH, 15.0) - 0.63).abs() < 0.005);
    assert!((freshness_batch_shadow(lambda, MONTH, 15.0) - 0.50).abs() < 0.005);
}

#[test]
fn figure9_shape() {
    let curve = optimal_frequency_curve(0.001, 10.0, 100, 25.0).unwrap();
    let freqs: Vec<f64> = curve.iter().map(|&(_, f)| f).collect();
    let peak = freqs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    // Interior peak: rises below λ_h, falls above (the paper's key
    // counterintuitive result).
    assert!(peak > 0 && peak < freqs.len() - 1);
    assert!(freqs[0] < freqs[peak]);
    assert!(*freqs.last().unwrap() < freqs[peak]);
    assert_eq!(*freqs.last().unwrap(), 0.0, "hottest pages abandoned");
}

#[test]
fn experiment_reproduces_section3_orderings() {
    let universe = WebUniverse::generate(UniverseConfig::test_scale(300));
    let report = run_full_experiment(
        &universe,
        &MonitorConfig { days: 128, failure_rate: 0.0, time_of_day: 0.0 },
        universe.site_count(),
        universe.site_count(),
    );

    // §3.1: com changes fastest; edu/gov mostly static.
    let daily = |d: Domain| report.fig2_by_domain.get(d).fraction(IntervalBin::UpToDay);
    assert!(daily(Domain::Com) > daily(Domain::Edu));
    assert!(daily(Domain::Com) > daily(Domain::Gov));
    let static_frac =
        |d: Domain| report.fig2_by_domain.get(d).fraction(IntervalBin::OverFourMonths);
    assert!(static_frac(Domain::Gov) > static_frac(Domain::Com));

    // §3.2: com pages shortest-lived (Method 1 histograms).
    let long_lived = |d: Domain| {
        report.fig4_by_domain.get(d).fraction(LifespanBin::OverFourMonths)
    };
    assert!(long_lived(Domain::Edu) > long_lived(Domain::Com));

    // §3.3: com's 50% change point comes earliest.
    let com_half = report
        .fig5_by_domain
        .get(Domain::Com)
        .half_life_days()
        .expect("com must cross 50% within 128 days");
    if let Some(gov_half) = report.fig5_by_domain.get(Domain::Gov).half_life_days() {
        assert!(com_half < gov_half);
    }

    // §3.4: the Poisson fit for the 10-day group is not strongly rejected.
    let fit10 = &report.fig6[0];
    assert!(fit10.samples > 20, "need interval samples, got {}", fit10.samples);
    assert!(fit10.chi_square.p_value > 1e-4, "p={}", fit10.chi_square.p_value);
}

#[test]
fn figure2_overall_headline_at_medium_scale() {
    // ">20% of pages changed whenever we visited them" — needs the full
    // domain mix, so run at medium scale once (release recommended).
    let universe = WebUniverse::generate(UniverseConfig::medium_scale(301));
    let sites: Vec<SiteId> = universe.sites().iter().map(|s| s.id).collect();
    let monitor = DailyMonitor::new(MonitorConfig {
        days: 128,
        failure_rate: 0.0,
        time_of_day: 0.0,
    });
    let data = monitor.run(&universe, &sites);
    let (overall, by_domain) = webevo::experiment::change_interval_histograms(&data);
    let daily_frac = overall.fraction(IntervalBin::UpToDay);
    assert!(daily_frac > 0.20, "overall daily fraction {daily_frac} (paper: >20%)");
    let com_daily = by_domain.get(Domain::Com).fraction(IntervalBin::UpToDay);
    assert!(com_daily > 0.40, "com daily fraction {com_daily} (paper: >40%)");
    let edu_static = by_domain
        .get(Domain::Edu)
        .fraction(IntervalBin::OverFourMonths);
    assert!(edu_static > 0.45, "edu static fraction {edu_static} (paper: >50%)");
}

#[test]
fn figure5_half_life_at_medium_scale() {
    // Figure 5's *shape*: com crosses 50% earliest by a wide margin,
    // gov/edu last (the paper: 11 days for com vs ~4 months for gov).
    //
    // Absolute crossings cannot match the paper's "about 50 days overall":
    // Figure 2(a)'s ">20% of pages changed at every visit" mathematically
    // forces the overall unchanged curve below 0.8 after a single day,
    // and with the Fig 2(b) mixtures the 50% crossing lands within ~2
    // weeks. The published 50-day figure is consistent only if Figure 5
    // excluded the every-visit changers or used a coarser change
    // criterion; EXPERIMENTS.md discusses the tension. We therefore pin
    // the domain ordering and sane bounds, not the absolute day.
    let universe = WebUniverse::generate(UniverseConfig::medium_scale(302));
    let sites: Vec<SiteId> = universe.sites().iter().map(|s| s.id).collect();
    let monitor = DailyMonitor::new(MonitorConfig {
        days: 128,
        failure_rate: 0.0,
        time_of_day: 0.0,
    });
    let data = monitor.run(&universe, &sites);
    let (overall, by_domain) = webevo::experiment::unchanged_curves(&data);
    let all_half = overall.half_life_days().expect("overall 50% within horizon");
    assert!(
        (2..=85).contains(&all_half),
        "overall half-life {all_half} out of plausible range"
    );
    let com_half = by_domain
        .get(Domain::Com)
        .half_life_days()
        .expect("com 50% within horizon");
    assert!(
        com_half <= all_half,
        "com ({com_half}) changes fastest (overall {all_half})"
    );
    // gov: the most static — 50% much later than com, or never within the
    // horizon ("almost 4 months" in the paper).
    if let Some(gov_half) = by_domain.get(Domain::Gov).half_life_days() {
        assert!(gov_half > com_half * 5, "gov {gov_half} vs com {com_half}");
    }
    // edu is also slow: clearly more survivors than com after a month
    // (changes *and* deaths both included, so the absolute level reflects
    // lifespan churn too).
    let edu_30 = by_domain.get(Domain::Edu).at_day(30);
    let com_30 = by_domain.get(Domain::Com).at_day(30);
    assert!(edu_30 > com_30 + 0.1, "edu {edu_30} vs com {com_30} at day 30");
    assert!(edu_30 > 0.25, "edu at day 30: {edu_30}");
}
