//! Property-based tests (proptest) over the workspace's core invariants.

use proptest::prelude::*;
use webevo::prelude::*;

proptest! {
    /// Freshness formulas always produce values in [0, 1], for every
    /// policy shape.
    #[test]
    fn freshness_formulas_bounded(
        lambda in 0.0f64..5.0,
        cycle in 0.5f64..200.0,
        window_frac in 0.01f64..1.0,
    ) {
        let window = cycle * window_frac;
        for f in [
            freshness_steady_inplace(lambda, cycle),
            freshness_batch_inplace(lambda, cycle, window),
            freshness_steady_shadow(lambda, cycle),
            freshness_batch_shadow(lambda, cycle, window),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "f={f}");
        }
    }

    /// Shadowing never beats in-place on time-averaged freshness.
    #[test]
    fn shadow_never_beats_inplace(
        lambda in 1e-4f64..5.0,
        cycle in 0.5f64..200.0,
        window_frac in 0.01f64..1.0,
    ) {
        let window = cycle * window_frac;
        let inplace = freshness_batch_inplace(lambda, cycle, window);
        let shadow = freshness_batch_shadow(lambda, cycle, window);
        prop_assert!(shadow <= inplace + 1e-12);
    }

    /// Periodic freshness is monotone: faster revisits never hurt.
    #[test]
    fn freshness_monotone_in_interval(
        lambda in 1e-4f64..5.0,
        i1 in 0.1f64..100.0,
        scale in 1.01f64..10.0,
    ) {
        let i2 = i1 * scale;
        prop_assert!(
            freshness_periodic(lambda, i1) >= freshness_periodic(lambda, i2) - 1e-12
        );
    }

    /// The optimal allocation conserves budget and never loses to uniform
    /// or proportional.
    #[test]
    fn optimal_allocation_invariants(
        seed in 0u64..1000,
        n in 2usize..40,
        budget in 0.1f64..50.0,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let rates: Vec<ChangeRate> =
            (0..n).map(|_| ChangeRate(rng.uniform_range(0.0, 3.0))).collect();
        let opt = optimal_allocation(&rates, budget).unwrap();
        prop_assert!((opt.allocation.total_budget() - budget).abs() < 1e-6);
        prop_assert!(opt.allocation.frequencies.iter().all(|&f| f >= 0.0));
        let f_opt = evaluate_allocation(&rates, &opt.allocation);
        let f_uni = evaluate_allocation(&rates, &uniform_allocation(&rates, budget).unwrap());
        let f_prop =
            evaluate_allocation(&rates, &proportional_allocation(&rates, budget).unwrap());
        prop_assert!(f_opt >= f_uni - 1e-7, "opt {f_opt} vs uni {f_uni}");
        prop_assert!(f_opt >= f_prop - 1e-7, "opt {f_opt} vs prop {f_prop}");
    }

    /// Poisson processes: counting queries agree with the event list.
    #[test]
    fn poisson_counting_consistency(
        seed in 0u64..500,
        lambda in 0.0f64..3.0,
        horizon in 1.0f64..200.0,
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let p = PoissonProcess::generate(&mut rng, lambda, horizon);
        let (a, b) = (horizon * a_frac.min(b_frac), horizon * a_frac.max(b_frac));
        let brute = p.events().iter().filter(|&&t| t >= a && t < b).count();
        prop_assert_eq!(p.count_in(a, b), brute);
        prop_assert_eq!(p.any_in(a, b), brute > 0);
        prop_assert_eq!(p.version_at(horizon) as usize, p.count());
    }

    /// Change-interval bins partition the positive axis: every value lands
    /// in exactly one bin, and the bins are ordered.
    #[test]
    fn interval_bins_partition(days in 0.001f64..10_000.0) {
        let bin = IntervalBin::classify(days);
        let idx = bin.index();
        prop_assert!(idx < 5);
        // Ordering: a longer interval never maps to an earlier bin.
        let later = IntervalBin::classify(days * 1.5);
        prop_assert!(later.index() >= idx);
    }

    /// Wilson CIs contain the point estimate and stay inside [0, 1].
    #[test]
    fn wilson_ci_sane(successes in 0u64..200, extra in 0u64..200) {
        let n = successes + extra;
        prop_assume!(n > 0);
        let ci = webevo::stats::binomial_wilson(successes, n, 0.95);
        let p_hat = successes as f64 / n as f64;
        prop_assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
        prop_assert!(ci.lo <= p_hat + 1e-12 && p_hat <= ci.hi + 1e-12);
    }

    /// Graph mutations preserve the forward/reverse adjacency invariant.
    #[test]
    fn page_graph_invariants(ops in proptest::collection::vec((0u8..4, 0u64..12, 0u64..12), 1..60)) {
        let mut g = PageGraph::new();
        for (op, a, b) in ops {
            let (pa, pb) = (PageId(a), PageId(b));
            match op {
                0 => g.add_page(pa, SiteId((a % 3) as u32)),
                1 => {
                    if g.contains(pa) && g.contains(pb) {
                        g.add_link(pa, pb);
                    }
                }
                2 => {
                    g.remove_page(pa);
                }
                _ => {
                    g.remove_link(pa, pb);
                }
            }
        }
        g.check_invariants();
    }

    /// PageRank sums to the page count (mean 1) on arbitrary graphs.
    #[test]
    fn pagerank_mass_conserved(edges in proptest::collection::vec((0u64..15, 0u64..15), 0..80)) {
        let mut g = PageGraph::new();
        for i in 0..15u64 {
            g.add_page(PageId(i), SiteId((i % 4) as u32));
        }
        for (a, b) in edges {
            g.add_link(PageId(a), PageId(b));
        }
        let scores = pagerank(&g, &PageRankConfig::conventional()).unwrap();
        let total: f64 = scores.iter().map(|(_, s)| s).sum();
        prop_assert!((total - 15.0).abs() < 1e-6, "total={total}");
    }

    /// The revisit queue is a faithful min-heap: drain order is sorted by
    /// due time.
    #[test]
    fn revisit_queue_orders(dues in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let mut q = webevo::schedule::RevisitQueue::new();
        for (i, &due) in dues.iter().enumerate() {
            q.push(Url::new(SiteId(0), PageId(i as u64)), due);
        }
        let drained = q.drain_sorted();
        prop_assert_eq!(drained.len(), dues.len());
        for w in drained.windows(2) {
            prop_assert!(w[0].due <= w[1].due);
        }
    }

    /// Summary::merge equals sequential accumulation.
    #[test]
    fn summary_merge_associative(xs in proptest::collection::vec(-1e4f64..1e4, 2..60), split in 1usize..58) {
        let split = split.min(xs.len() - 1);
        let mut left = Summary::of(xs[..split].iter().copied());
        let right = Summary::of(xs[split..].iter().copied());
        left.merge(&right);
        let whole = Summary::of(xs.iter().copied());
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-7);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-5);
    }

    /// Age formulas: non-negative, zero for static pages, monotone in the
    /// revisit interval.
    #[test]
    fn age_invariants(lambda in 0.0f64..3.0, interval in 0.1f64..100.0, scale in 1.01f64..5.0) {
        use webevo::freshness::age_periodic;
        let a1 = age_periodic(lambda, interval);
        let a2 = age_periodic(lambda, interval * scale);
        prop_assert!(a1 >= 0.0);
        prop_assert!(a2 >= a1 - 1e-9, "slower revisits age more: {a1} vs {a2}");
        if lambda == 0.0 {
            prop_assert_eq!(a1, 0.0);
        }
    }
}
