//! Cross-crate integration: the crawler engines against the simulator,
//! checking the §4/§5 design claims end to end — all through the
//! `CrawlSession` driver API.

use webevo::prelude::*;

fn universe(seed: u64) -> WebUniverse {
    WebUniverse::generate(UniverseConfig::test_scale(seed))
}

fn incremental_config(capacity: usize, cycle: f64) -> IncrementalConfig {
    IncrementalConfig {
        capacity,
        crawl_rate_per_day: capacity as f64 / cycle,
        ranking_interval_days: 1.0,
        revisit: RevisitStrategy::Uniform,
        estimator: EstimatorKind::Ep,
        history_window: 150,
        sample_interval_days: 0.5,
        ranking: RankingConfig::default(),
    }
}

#[test]
fn incremental_beats_periodic_on_freshness_and_latency() {
    // Capacity covers the whole window population: both crawlers can hold
    // everything, so the comparison isolates *when* pages are refreshed
    // and when new pages become visible (the paper's §1 argument), not
    // which pages each happens to cover.
    let u = universe(400);
    let capacity = 320;
    let cycle = 12.0;
    let horizon = 72.0;

    let mut inc_session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(IncrementalConfig {
            revisit: RevisitStrategy::Optimal,
            ..incremental_config(capacity, cycle)
        })
        .universe(&u)
        .build()
        .expect("a valid session");
    inc_session.run(horizon).expect("the crawl runs");
    let inc = inc_session.metrics();

    let mut per_session = CrawlSession::builder()
        .engine(EngineKind::Periodic)
        .periodic(PeriodicConfig {
            capacity,
            cycle_days: cycle,
            window_days: cycle / 4.0,
            sample_interval_days: 0.5,
        })
        .universe(&u)
        .build()
        .expect("a valid session");
    per_session.run(horizon).expect("the crawl runs");
    let per = per_session.metrics();

    let warmup = 2.0 * cycle;
    let f_inc = inc.average_freshness_from(warmup);
    let f_per = per.average_freshness_from(warmup);
    assert!(
        f_inc > f_per - 0.02,
        "incremental freshness {f_inc} should be at least the periodic {f_per}"
    );
    // Peak speed: the batch crawler's defining cost (§4).
    assert!(
        per.peak_speed > inc.peak_speed * 3.0,
        "periodic peak {} vs incremental {}",
        per.peak_speed,
        inc.peak_speed
    );
    // §1: "the incremental crawler may immediately index the new page,
    // right after it is found" — found→visible latency must be near zero
    // for the incremental crawler, while the periodic crawler sits on
    // found pages until the shadow swap.
    let d_inc = inc.discovery_latency.mean();
    let d_per = per.discovery_latency.mean();
    assert!(
        inc.discovery_latency.count() > 20,
        "need enough admissions to compare"
    );
    assert!(
        d_inc < d_per,
        "incremental found-to-visible {d_inc} should beat periodic {d_per}"
    );
    assert!(d_inc < 1.0, "incremental indexes found pages within a day: {d_inc}");
    // Birth→visible is dominated by discovery physics and roughly
    // comparable; neither should be wildly worse.
    let l_inc = inc.new_page_latency.mean();
    let l_per = per.new_page_latency.mean();
    assert!(l_inc < l_per * 2.5 + 1.0, "inc {l_inc} vs per {l_per}");
}

#[test]
fn variable_frequency_beats_fixed_under_tight_budget() {
    // §4.3: adjusting revisit frequency to change frequency raises
    // freshness — visible when the budget is scarce and rates are skewed.
    let u = universe(401);
    let capacity = 120;
    let cycle = 30.0; // tight: each page only ~once a month
    let horizon = 120.0;
    let run = |revisit: RevisitStrategy| {
        let mut session = CrawlSession::builder()
            .engine(EngineKind::Incremental)
            .incremental(IncrementalConfig {
                revisit,
                ..incremental_config(capacity, cycle)
            })
            .universe(&u)
            .build()
            .expect("a valid session");
        session.run(horizon).expect("the crawl runs");
        session.metrics().average_freshness_from(cycle * 2.0)
    };
    let uniform = run(RevisitStrategy::Uniform);
    let optimal = run(RevisitStrategy::Optimal);
    assert!(
        optimal > uniform - 0.03,
        "optimal {optimal} should not lose to uniform {uniform}"
    );
}

#[test]
fn threaded_engine_agrees_with_sequential() {
    // Fixed composition: no churn and full coverage, so the comparison
    // isolates scheduling (see threaded.rs for the rationale).
    let mut ucfg = UniverseConfig::test_scale(402);
    ucfg.churn = false;
    ucfg.pages_per_site = 18;
    ucfg.window_size = 18;
    let u = WebUniverse::generate(ucfg);
    let cfg = incremental_config(180, 8.0);
    let run = |kind: EngineKind| {
        let mut session = CrawlSession::builder()
            .engine(kind)
            .incremental(cfg.clone())
            .universe(&u)
            .build()
            .expect("a valid session");
        session.run(48.0).expect("the crawl runs");
        (
            session.metrics().average_freshness_from(24.0),
            session.collection_len(),
        )
    };
    let (f_single, n_single) = run(EngineKind::Incremental);
    let (f_threaded, n_threaded) = run(EngineKind::Threaded { workers: 4 });
    assert!(
        (f_single - f_threaded).abs() < 0.08,
        "sequential {f_single} vs threaded {f_threaded}"
    );
    assert!(n_threaded >= n_single * 9 / 10);
}

#[test]
fn threaded_engine_handles_churn() {
    // Under churn the page sets drift apart, but the threaded engine must
    // still fill its collection and stay reasonably fresh.
    let u = universe(402);
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Threaded { workers: 4 })
        .incremental(incremental_config(80, 8.0))
        .universe(&u)
        .build()
        .expect("a valid session");
    session.run(48.0).expect("the crawl runs");
    assert!(session.collection_len() >= 70);
    assert!(session.metrics().average_freshness_from(24.0) > 0.3);
}

#[test]
fn crawler_tolerates_failures_and_churn() {
    let u = universe(403);
    let mut fetcher = SimFetcher::new(&u).with_failure_rate(0.25);
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(incremental_config(100, 10.0))
        .universe(&u)
        .fetcher(&mut fetcher)
        .build()
        .expect("a valid session");
    session.run(90.0).expect("the crawl runs");
    assert!(session.metrics().failed_fetches > 50);
    assert!(
        session.collection_len() >= 70,
        "collection holds up under 25% failures: {}",
        session.collection_len()
    );
    assert!(session.metrics().average_freshness_from(40.0) > 0.35);
}

#[test]
fn montecarlo_policies_match_analytic_table2() {
    // The §4 policy simulator (independent of the crawler engines) agrees
    // with the closed forms on the paper's parameters.
    use webevo::freshness::montecarlo::simulate_policy;
    let lambda = 1.0 / 120.0;
    for policy in CrawlPolicy::table2_policies() {
        let mc = simulate_policy(&policy, lambda, 300, 3, 40, 9).current_avg;
        let analytic = webevo::freshness::table2_entry(&policy, lambda);
        assert!(
            (mc - analytic).abs() < 0.03,
            "{}: mc {mc} vs analytic {analytic}",
            policy.label()
        );
    }
}
