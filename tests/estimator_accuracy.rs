//! Estimator integration tests: EP/EB accuracy against simulator ground
//! truth across the paper's rate spectrum, and their behaviour inside the
//! crawler loop.

use webevo::prelude::*;

fn daily_history(lambda: f64, days: usize, seed: u64) -> ChangeHistory {
    let mut rng = SimRng::seed_from_u64(seed);
    let process = PoissonProcess::generate(&mut rng, lambda, days as f64 + 1.0);
    let mut h = ChangeHistory::new(days + 2);
    for day in 0..=days {
        let t = day as f64;
        h.record_visit(t, Checksum::of_version(seed, process.version_at(t)));
    }
    h
}

#[test]
fn ep_accuracy_across_rate_spectrum() {
    // Median relative error across seeds must be modest for estimable
    // rates (daily sampling estimates rates well below ~1/day).
    for &lambda in &[0.02, 0.1, 1.0 / 7.0, 0.3] {
        let mut errors: Vec<f64> = (0..20)
            .map(|seed| {
                let h = daily_history(lambda, 300, 1000 + seed);
                let est = estimate_ep(&h, 0.95).expect("history has data");
                (est.rate.per_day() - lambda).abs() / lambda
            })
            .collect();
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errors[errors.len() / 2];
        assert!(median < 0.35, "λ={lambda}: median relative error {median}");
    }
}

#[test]
fn ep_ci_coverage_is_calibrated() {
    let lambda = 0.08;
    let trials = 100;
    let covered = (0..trials)
        .filter(|&seed| {
            let h = daily_history(lambda, 250, 2000 + seed);
            estimate_ep(&h, 0.95)
                .map(|e| e.ci.contains(lambda))
                .unwrap_or(false)
        })
        .count();
    let coverage = covered as f64 / trials as f64;
    assert!(coverage >= 0.88, "95% CI coverage {coverage}");
}

#[test]
fn eb_classifies_paper_classes() {
    // Pages generated exactly at the class rates should be classified
    // correctly after 4 months of daily observation.
    let cases = [
        (1.0, "daily"),
        (1.0 / 7.0, "weekly"),
        (1.0 / 30.0, "monthly"),
        (1.0 / 120.0, "quarterly+"),
    ];
    for (i, &(lambda, expected)) in cases.iter().enumerate() {
        let mut correct = 0;
        let trials = 10;
        for seed in 0..trials {
            let mut rng = SimRng::seed_from_u64(3000 + i as u64 * 100 + seed);
            let process = PoissonProcess::generate(&mut rng, lambda, 130.0);
            let mut bayes =
                BayesianEstimator::uniform_prior(BayesianEstimator::paper_classes()).unwrap();
            let mut prev = 0;
            for day in 1..=128 {
                let v = process.version_at(day as f64);
                bayes.observe(1.0, v != prev);
                prev = v;
            }
            if bayes.map_class().label == expected {
                correct += 1;
            }
        }
        assert!(
            correct >= 6,
            "class {expected} (λ={lambda}): only {correct}/{trials} correct"
        );
    }
}

#[test]
fn irregular_mle_handles_crawler_like_schedules() {
    // The incremental crawler visits pages at uneven intervals; the
    // irregular MLE must stay accurate there.
    let lambda = 0.12;
    let mut rng = SimRng::seed_from_u64(4000);
    let process = PoissonProcess::generate(&mut rng, lambda, 3000.0);
    let mut h = ChangeHistory::new(5000);
    let mut t = 0.0;
    while t < 2500.0 {
        h.record_visit(t, Checksum::of_version(1, process.version_at(t)));
        // Intervals drawn from a crawler-ish mixture: mostly 1-3 days,
        // occasional week-long gaps.
        t += match (t as u64) % 7 {
            0 => 7.0,
            1 | 2 => 1.0,
            3 | 4 => 2.0,
            _ => 3.0,
        };
    }
    let est = estimate_irregular_mle(&h).expect("has data");
    assert!(
        (est.per_day() - lambda).abs() < 0.03,
        "irregular MLE {} vs true {lambda}",
        est.per_day()
    );
}

#[test]
fn site_pooling_tightens_ci_on_homogeneous_sites() {
    let lambda = 0.06;
    let mut pool = SitePool::new();
    let mut single_width = f64::NAN;
    for seed in 0..25 {
        let h = daily_history(lambda, 90, 5000 + seed);
        if seed == 0 {
            single_width = estimate_ep(&h, 0.95).unwrap().ci.width();
        }
        pool.add_history(&h);
    }
    let pooled = pool.estimate(0.95).unwrap();
    assert!(pooled.ci.width() < single_width / 2.0);
    assert!(pooled.ci.contains(lambda));
}

#[test]
fn estimators_converge_inside_the_crawler() {
    // After a long run, the crawler's EP estimates for long-held pages
    // should correlate with ground truth: fast pages estimated faster
    // than slow pages on average.
    let u = WebUniverse::generate(UniverseConfig::test_scale(500));
    let capacity = 100;
    let mut session = CrawlSession::builder()
        .engine(EngineKind::Incremental)
        .incremental(IncrementalConfig {
            capacity,
            crawl_rate_per_day: capacity as f64 / 4.0, // frequent revisits
            ranking_interval_days: 2.0,
            revisit: RevisitStrategy::Uniform,
            estimator: EstimatorKind::Ep,
            history_window: 300,
            sample_interval_days: 1.0,
            ranking: RankingConfig::default(),
        })
        .universe(&u)
        .build()
        .expect("a valid session");
    session.run(100.0).expect("the crawl runs");

    let mut fast_true = Vec::new();
    let mut slow_true = Vec::new();
    for (p, stored) in session.collection().expect("incremental has one").iter() {
        if stored.history.comparisons() < 10 {
            continue;
        }
        let detected_rate = stored.history.detections() as f64
            / stored.history.monitored_days().max(1.0);
        let true_rate = u.page(p).rate.per_day();
        if true_rate > 0.5 {
            fast_true.push(detected_rate);
        } else if true_rate < 0.02 {
            slow_true.push(detected_rate);
        }
    }
    if !fast_true.is_empty() && !slow_true.is_empty() {
        let fast_mean: f64 = fast_true.iter().sum::<f64>() / fast_true.len() as f64;
        let slow_mean: f64 = slow_true.iter().sum::<f64>() / slow_true.len() as f64;
        assert!(
            fast_mean > slow_mean * 3.0,
            "detected rates must separate: fast {fast_mean} vs slow {slow_mean}"
        );
    }
}
